"""Command-line interface.

Installed as the ``fluxrepro`` console script, or run as a module::

    python -m repro run --query query.xq --input document.xml [--dtd schema.dtd]
    python -m repro explain --query query.xq --dtd schema.dtd
    python -m repro compare --query query.xq --input document.xml --dtd schema.dtd
    python -m repro multi --queries queries/ --input document.xml [--dtd schema.dtd]

* ``run`` evaluates an XQuery over an XML document with the FluX engine and
  writes the result to stdout (or ``--output``), reporting buffering and
  timing statistics on stderr.
* ``explain`` compiles a query and prints the optimizer stages: the
  normalized/optimized XQuery, the generated FluX query, and the buffer
  description forest.
* ``compare`` runs the query with all three engines (FluX, projection, DOM)
  and prints a memory/runtime comparison table.
* ``multi`` serves a whole *directory* of queries (``*.xq``) over one
  document (``--input``) or a whole sequence of documents (``--documents``,
  the serve loop: one shared pass per document, plans compiled once) —
  every query is compiled through the shared plan cache and executed by the
  multi-query :class:`~repro.service.QueryService`, so each document is
  parsed and validated once, not once per query; each query receives only
  the events the shared router deems relevant to *it*.  ``--execution``
  picks the driver: per-query worker threads, the round-robin in-thread
  scheduler (``inline``), or the asyncio front end over it (``async``).
  ``--workers N`` upgrades the serve loop to a fault-isolated
  :class:`~repro.service.ServicePool`: N mirrored services sharing one
  plan cache shard the document stream, a document that fails mid-pass is
  reported and skipped (exit status 1) instead of aborting the stream,
  and results are reported as they complete.  ``--backend processes``
  moves the pool workers into separate *processes*
  (:class:`~repro.service.ProcessServicePool`): the parent compiles each
  query once and ships the pickled plan to every worker, evaluation
  parallelizes across cores instead of interleaving under the GIL, and a
  crashed worker process is respawned with its in-flight document
  reported as an error.  ``--plan-cache-file PATH`` warm-starts the plan
  cache from a previous run's snapshot (and saves an updated snapshot on
  exit), so a restarted service skips cold compilation.  Results go to
  ``--output-dir`` (one ``<name>.xml`` per query; one subdirectory per
  document when serving several) or stdout; per-query statistics and the
  shared scan's savings are reported on stderr, and ``--json`` dumps them
  machine-readably.  Observability is opt-in per component:
  ``--metrics-out FILE`` writes a metrics snapshot (JSON plus
  ``FILE.prom`` Prometheus text), ``--trace-out FILE`` writes stage spans
  as JSON-lines (one trace id per document, propagated into pool
  workers), ``--log-json [FILE]`` writes structured lifecycle events, and
  ``--profile`` prints a per-stage cProfile report; with all four off the
  serving path is the uninstrumented one.
* ``stats`` pretty-prints a metrics snapshot written by
  ``multi --metrics-out``.

Queries and documents are read from files; ``-`` means stdin.  The DTD can
be given explicitly with ``--dtd``; otherwise, if the document carries a
DOCTYPE with an internal subset, that subset is used; without any schema the
query still runs, with maximal buffering.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

from repro.core.optimizer import OptimizerPipeline
from repro.dtd.parser import parse_dtd
from repro.dtd.schema import DTD
from repro.engines.dom_engine import DomEngine
from repro.engines.flux_engine import FluxEngine
from repro.engines.projection_engine import ProjectionEngine
from repro.bench.harness import BenchmarkHarness
from repro.bench.reporting import format_table
from repro.obs import (
    JsonLinesSink,
    JsonLogger,
    MetricsRegistry,
    Observability,
    StageProfiler,
    Tracer,
    format_snapshot,
)
from repro.runtime.plan_cache import PlanCache
from repro.service import (
    AsyncQueryService,
    AsyncServicePool,
    FileDocument,
    ProcessServicePool,
    QueryService,
    ServicePool,
)
from repro.xmlstream.events import StartElement
from repro.xmlstream.parser import StreamingXMLParser


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _load_dtd(dtd_path: Optional[str], document) -> Optional[DTD]:
    """The DTD for a run: an explicit file, or the document's DOCTYPE.

    ``document`` is XML text or a file-like object.  The DOCTYPE declaration
    lives in the prolog, so parsing up to the first start tag is enough —
    draining the whole event stream here would parse every document twice.
    """
    if dtd_path:
        return parse_dtd(_read(dtd_path))
    if document is not None:
        parser = StreamingXMLParser(document)
        try:
            for event in parser.events():
                if parser.doctype_internal_subset is not None or isinstance(
                    event, StartElement
                ):
                    break
        except Exception:  # pragma: no cover - malformed input surfaces later
            return None
        if parser.doctype_internal_subset:
            return parse_dtd(parser.doctype_internal_subset)
    return None


def _write_result(output: str, path: Optional[str]) -> None:
    """Write a query result, identically to a file or to stdout."""
    if path and path != "-":
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(output + "\n")
    else:
        sys.stdout.write(output + "\n")


def _command_run(args: argparse.Namespace) -> int:
    query = _read(args.query)
    document = _read(args.input)
    dtd = _load_dtd(args.dtd, document)
    engine = FluxEngine(dtd, validate=not args.no_validate)
    result = engine.execute(query, document)
    _write_result(result.output, args.output)
    print(
        f"[flux] peak buffer: {result.peak_buffer_bytes} B, "
        f"time: {result.stats.elapsed_seconds * 1000:.1f} ms, "
        f"events: {result.stats.events_processed}",
        file=sys.stderr,
    )
    return 0


def _command_explain(args: argparse.Namespace) -> int:
    """Compile a query and print optimizer stages + the static analysis.

    Sections, in order: the optimizer's own ``describe()`` stages, the
    buffer description forest, safety, the scheduler's buffering
    decisions, the analyzer's plan DAG / buffer bounds / predicted cost /
    chosen execution mode, and (last, so golden tests can truncate the
    only nondeterministic part) the optimizer timings.
    """
    from repro.analysis.query import explain_compiled
    from repro.errors import ReproError
    from repro.runtime.compiler import compile_query

    try:
        query = _read(args.query)
        dtd = _load_dtd(args.dtd, None)
        entry = compile_query(query, pipeline=OptimizerPipeline(dtd))
    except (OSError, ReproError) as exc:
        print(f"explain: {exc}", file=sys.stderr)
        return 2
    compiled = entry.optimized
    print(compiled.describe())
    print("== Buffer description forest ==")
    print(entry.plan.bdf.describe())
    print("== Safety ==")
    print("safe" if compiled.is_safe else "\n".join(str(v) for v in compiled.safety_violations))
    reasons = compiled.scheduling_report.buffer_reasons
    if reasons:
        print("== Buffering decisions ==")
        for reason in reasons:
            print(f"    - {reason}")
    observations = None
    if args.plan_cache_file:
        cache = PlanCache()
        if os.path.exists(args.plan_cache_file):
            try:
                cache.load(args.plan_cache_file)
            except ValueError as exc:
                print(f"explain: {exc}", file=sys.stderr)
                return 2
            observations = cache.observations_for(entry)
    print(
        explain_compiled(
            entry,
            document_bytes=args.document_bytes,
            document_count=args.document_count,
            cpu_count=args.cpus,
            observations=observations,
        )
    )
    print("== Optimizer timings ==")
    for stage in ("parse", "normalize", "optimize", "schedule", "safety"):
        if stage in compiled.stage_seconds:
            print(f"{stage:<9} {compiled.stage_seconds[stage] * 1000:9.3f} ms")
    print(f"{'total':<9} {compiled.optimize_seconds * 1000:9.3f} ms")
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    """Pretty-print a metrics snapshot written by ``multi --metrics-out``."""
    try:
        text = _read(args.snapshot)
    except OSError as exc:
        print(f"stats: {exc}", file=sys.stderr)
        return 2
    try:
        snapshot = json.loads(text)
    except ValueError as exc:
        print(f"stats: {args.snapshot} is not a metrics snapshot: {exc}", file=sys.stderr)
        return 2
    if not isinstance(snapshot, dict):
        print(f"stats: {args.snapshot} is not a metrics snapshot", file=sys.stderr)
        return 2
    sys.stdout.write(format_snapshot(snapshot))
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    """Run the in-repo static-analysis suite (``repro.analysis``)."""
    from repro.analysis import (
        all_codes,
        default_lint_root,
        render_json,
        render_sarif,
        render_text,
        run_lint,
        write_baseline,
    )

    if args.check_baseline and not args.baseline:
        print("lint: --check-baseline requires --baseline FILE", file=sys.stderr)
        return 2
    paths = args.paths or [default_lint_root()]
    for path in paths:
        if not os.path.exists(path):
            print(f"lint: no such file or directory: {path}", file=sys.stderr)
            return 2
    fail_on: Optional[set] = None
    if args.fail_on and args.fail_on != "all":
        fail_on = {code.strip() for code in args.fail_on.split(",") if code.strip()}
        unknown = fail_on - set(all_codes())
        if unknown:
            print(f"lint: unknown finding code(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
    try:
        result = run_lint(paths, baseline_path=args.baseline)
    except (OSError, ValueError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        write_baseline(result.findings, args.write_baseline)
        print(
            f"lint: wrote {len(result.findings)} finding(s) to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0
    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result))
    stale = result.stale if args.check_baseline else []
    for fingerprint in stale:
        print(
            "lint: stale baseline suppression (no longer fires): "
            + "|".join(fingerprint),
            file=sys.stderr,
        )
    if result.errors or result.failing(fail_on) or stale:
        return 1
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    query = _read(args.query)
    document = _read(args.input)
    dtd = _load_dtd(args.dtd, document)
    engines = {
        "flux": FluxEngine(dtd),
        "projection": ProjectionEngine(dtd),
        "dom": DomEngine(dtd),
    }
    harness = BenchmarkHarness(engines)
    harness.run(query, document, args.query, args.input)
    print(format_table(harness.measurements, metric="peak_buffer_bytes", title="peak buffer memory"))
    print()
    print(format_table(harness.measurements, metric="elapsed_seconds", title="evaluation runtime"))
    return 0


class _StreamingDocument:
    """A file-like over a path that closes itself at end of file.

    Pool workers hold documents in flight concurrently, so the source
    generator cannot scope each handle with ``with`` (the block would
    close it as soon as the shard pulls the *next* document, racing the
    worker still reading this one).  This reader owns its handle and
    closes it when the pass has drained it, keeping pooled serving as
    streaming as the plain loop.
    """

    def __init__(self, path: str):
        self._handle = open(path, "r", encoding="utf-8")

    def read(self, size: int = -1) -> str:
        if self._handle.closed:
            return ""
        chunk = self._handle.read(size)
        if not chunk:
            self._handle.close()
        return chunk

    def close(self) -> None:
        self._handle.close()

    def __del__(self):  # aborted pass: the handle still gets released
        try:
            self._handle.close()
        except Exception:
            pass


def _load_multi_queries(queries_dir: str):
    """The ``multi`` query catalogue: ``[(key, xquery text)]`` or an error.

    Returns ``(pairs, error_message)``; an empty directory or a blank query
    file is a *user* error reported cleanly (no pass is ever opened with
    zero plans, no parser traceback for an empty file).
    """
    query_files = sorted(
        name for name in os.listdir(queries_dir) if name.endswith(".xq")
    )
    if not query_files:
        return None, f"no *.xq files in {queries_dir}"
    pairs = []
    for name in query_files:
        path = os.path.join(queries_dir, name)
        text = _read(path)
        if not text.strip():
            return None, f"query file {path} is empty"
        pairs.append((os.path.splitext(name)[0], text))
    return pairs, None


def _document_labels(paths) -> "list":
    """A unique, filesystem-safe label per served document path."""
    labels = []
    taken = set()
    for path in paths:
        stem = "stdin" if path == "-" else os.path.splitext(os.path.basename(path))[0]
        label, count = stem, 1
        while label in taken:  # suffix until unique, even vs. real stems
            count += 1
            label = f"{stem}.{count}"
        taken.add(label)
        labels.append(label)
    return labels


def _multi_report_pass(label, results, metrics, args, per_document: bool) -> None:
    """Print one pass's results/statistics (stdout + stderr)."""
    prefix = f"{label}/" if per_document else ""
    out_dir = args.output_dir
    if out_dir and per_document:
        out_dir = os.path.join(out_dir, label)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    for key in sorted(results):
        result = results[key]
        if out_dir:
            _write_result(result.output, os.path.join(out_dir, f"{key}.xml"))
        else:
            sys.stdout.write(f"<!-- {prefix}{key} -->\n")
            _write_result(result.output, None)
        routed = metrics.per_query_forwarded.get(key)
        routed_note = f", routed: {routed}" if routed is not None else ""
        print(
            f"[{prefix}{key}] peak buffer: {result.peak_buffer_bytes} B, "
            f"time: {result.stats.elapsed_seconds * 1000:.1f} ms, "
            f"events: {result.stats.events_processed}{routed_note}",
            file=sys.stderr,
        )
    print(
        f"[shared pass{' ' + label if per_document else ''}] "
        f"{metrics.queries} queries, one scan: "
        f"{metrics.parser_events} parser events "
        f"({metrics.events_saved_vs_solo} saved vs. solo runs), "
        f"{metrics.events_forwarded} forwarded, "
        f"{metrics.events_pruned} pruned, "
        f"{metrics.text_events_dropped} text dropped, "
        f"time: {metrics.elapsed_seconds * 1000:.1f} ms",
        file=sys.stderr,
    )


def _build_observability(args: argparse.Namespace) -> Optional[Observability]:
    """The observability hub for one ``multi`` run (``None``: all flags off).

    Each flag enables exactly one component: ``--metrics-out`` the
    registry, ``--trace-out`` a JSON-lines span sink, ``--log-json`` the
    structured event log (to a file, or stderr for the bare flag), and
    ``--profile`` the per-stage cProfile hooks.  With every flag off the
    serving code keeps its original, uninstrumented path.
    """
    if not (args.metrics_out or args.trace_out or args.log_json or args.profile):
        return None
    return Observability(
        metrics=MetricsRegistry() if args.metrics_out else None,
        tracer=Tracer(JsonLinesSink(args.trace_out)) if args.trace_out else None,
        logger=(
            JsonLogger(sys.stderr if args.log_json == "-" else args.log_json)
            if args.log_json
            else None
        ),
        profiler=StageProfiler() if args.profile else None,
    )


def _finalize_observability(obs, args, summary_source, pooled: bool) -> None:
    """Write the run's metrics snapshot and profile report, flush sinks.

    The registry gets the run's final service/pool totals and the plan
    cache's counters folded in (the push-style pass/stage series are
    already there), then ``--metrics-out`` receives the JSON snapshot and
    ``--metrics-out``+``.prom`` the Prometheus text exposition.
    """
    if obs.metrics is not None:
        summary = summary_source.stats_summary()
        summary.pop("plan_cache", None)
        obs.metrics.set_from_dict(
            "repro_pool" if pooled else "repro_service", summary
        )
        summary_source.plan_cache.register_metrics(obs.metrics)
        snapshot = obs.metrics.snapshot()
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
        prom_path = args.metrics_out + ".prom"
        with open(prom_path, "w", encoding="utf-8") as handle:
            handle.write(obs.metrics.to_prometheus())
        print(
            f"[obs] metrics snapshot: {args.metrics_out} "
            f"(Prometheus text: {prom_path})",
            file=sys.stderr,
        )
    if obs.profiler is not None:
        print(obs.profiler.report(), file=sys.stderr)
    obs.close()


def _command_multi(args: argparse.Namespace) -> int:
    if bool(args.input) == bool(args.documents):
        print("multi: give exactly one of --input or --documents", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print("multi: --workers must be at least 1", file=sys.stderr)
        return 2
    # "auto" anywhere defers the unset knobs to the static analyzer's
    # mode policy, resolved below once queries, schema, and document
    # sizes are in hand.
    auto_requested = "auto" in (args.execution, args.backend)
    if args.backend == "processes" and args.workers is None:
        print("multi: --backend processes requires --workers N", file=sys.stderr)
        return 2
    # The per-query driver *inside* each serving pass.  Unset means the
    # backend's own default: worker threads in-process, but "inline" inside
    # process-pool workers — there per-query threads buy no overlap, only
    # handoff cost on top of the process parallelism.
    if args.execution is None:
        if args.backend == "auto":
            args.execution = "auto"
        else:
            args.execution = "inline" if args.backend == "processes" else "threads"
    if args.backend == "processes" and args.execution == "async":
        print(
            "multi: --backend processes drives workers with the inline or "
            "threads scheduler; --execution async is the asyncio front end "
            "of the in-process backend",
            file=sys.stderr,
        )
        return 2
    queries, error = _load_multi_queries(args.queries)
    if error:
        print(error, file=sys.stderr)
        return 2
    paths = args.documents if args.documents else [args.input]
    labels = _document_labels(paths)
    per_document = len(paths) > 1

    # --plan-cache-file: warm-start compilation from a previous run's
    # snapshot; an updated snapshot is saved after serving.
    plan_cache = None
    if args.plan_cache_file:
        plan_cache = PlanCache()
        if os.path.exists(args.plan_cache_file):
            try:
                preloaded = plan_cache.load(args.plan_cache_file)
            except ValueError as exc:
                print(f"multi: {exc}", file=sys.stderr)
                return 2
            print(
                f"[plan-cache] warm start: {preloaded} plans loaded from "
                f"{args.plan_cache_file}",
                file=sys.stderr,
            )

    # Unlike `run`, the shared pass never needs a whole document in memory:
    # file inputs are streamed (the prolog of the first one is re-read
    # separately for an embedded DOCTYPE); only stdin must be buffered.
    stdin_text = sys.stdin.read() if "-" in paths else None
    if args.dtd:
        dtd = _load_dtd(args.dtd, None)
    elif paths[0] == "-":
        dtd = _load_dtd(None, stdin_text)
    else:
        with open(paths[0], "r", encoding="utf-8") as prolog:
            dtd = _load_dtd(None, prolog)

    # --execution auto / --backend auto: compile the fleet up front (through
    # the plan cache, so the work is reused by the serving pass and the
    # estimates pick up any persisted pass observations) and let the static
    # cost model fill in whichever knobs were left to it.  Explicit values —
    # including an explicit --workers — always win over the policy.
    if auto_requested:
        from repro.analysis.query import (
            apply_observations,
            estimate_cost,
            select_mode,
        )
        from repro.errors import ReproError

        if plan_cache is None:
            plan_cache = PlanCache()
        pipeline = OptimizerPipeline(dtd)
        costs = []
        for _key, text in queries:
            try:
                entry, _ = plan_cache.get_or_compile(text, pipeline)
            except ReproError as exc:
                print(f"multi: {exc}", file=sys.stderr)
                return 2
            costs.append(
                apply_observations(
                    estimate_cost(entry), plan_cache.observations_for(entry)
                )
            )
        sizes = []
        for path in paths:
            if path == "-":
                sizes.append(len((stdin_text or "").encode("utf-8")))
            else:
                try:
                    sizes.append(os.path.getsize(path))
                except OSError:
                    pass  # missing file surfaces as a serve error later
        decision = select_mode(
            costs,
            document_bytes=max(sizes) if sizes else None,
            document_count=len(paths),
        )
        if args.execution == "auto":
            args.execution = decision.execution
        if args.backend == "auto":
            # async is the front end of the in-process backend; an auto
            # backend under it can only mean that backend's thread pool.
            args.backend = (
                "threads" if args.execution == "async" else decision.backend
            )
        if args.workers is None and decision.workers is not None:
            args.workers = decision.workers
        print(f"[auto] {decision.describe()}", file=sys.stderr)
        for reason in decision.reasons:
            print(f"[auto]   - {reason}", file=sys.stderr)

    # Any explicit --workers (1 included) selects the fault-isolated pool;
    # the default is the plain all-or-nothing serve loop.
    pooled = args.workers is not None
    workers = args.workers if pooled else 1

    def documents():
        """One streamed document per served path (handles closed after —
        or, in pooled mode, at end of — their pass).  With the process
        backend, file paths ship as :class:`FileDocument` recipes so the
        worker that serves a document also reads it."""
        for path in paths:
            if path == "-":
                yield stdin_text
            elif args.backend == "processes":
                yield FileDocument(path)
            elif pooled:
                yield _StreamingDocument(path)
            else:
                with open(path, "r", encoding="utf-8") as handle:
                    yield handle

    validate = not args.no_validate
    obs = _build_observability(args)
    # Each pass is reported (stdout/stderr/files) as soon as it finishes —
    # a long stream never buffers results, a mid-stream failure leaves
    # every completed document's output already delivered, and with a pool
    # a failing document is reported as an error while the rest of the
    # stream keeps serving.  Only the small per-pass accounting is
    # retained, for the --json summary (never the QueryResults themselves:
    # their outputs can dwarf the documents).
    served = []  # (label, {outcome/worker/error/metrics}, {key: stats dict})

    def report(outcome) -> None:
        label = labels[outcome.index]
        accounting = {
            "outcome": outcome.outcome,
            "worker": outcome.worker,
            "error": str(outcome.error) if outcome.error is not None else None,
            "metrics": outcome.metrics,
        }
        if not outcome.ok:
            print(
                f"[{label}] ERROR: {type(outcome.error).__name__}: {outcome.error}",
                file=sys.stderr,
            )
            served.append((label, accounting, {}))
            return
        _multi_report_pass(label, outcome.results, outcome.metrics, args, per_document)
        served.append(
            (
                label,
                accounting,
                {key: result.stats.as_dict() for key, result in outcome.results.items()},
            )
        )

    # Every mode shares one registration surface and one serve/report
    # loop; only the service class differs.
    if args.execution == "async":
        service = (
            AsyncServicePool(dtd, workers=workers, validate=validate,
                             plan_cache=plan_cache, obs=obs)
            if pooled
            else AsyncQueryService(dtd, validate=validate, plan_cache=plan_cache,
                                   obs=obs)
        )
    elif args.backend == "processes":
        service = ProcessServicePool(
            dtd,
            workers=workers,
            validate=validate,
            execution=args.execution,
            plan_cache=plan_cache,
            obs=obs,
        )
    elif pooled:
        service = ServicePool(
            dtd, workers=workers, validate=validate, execution=args.execution,
            plan_cache=plan_cache, obs=obs,
        )
    else:
        service = QueryService(dtd, validate=validate, execution=args.execution,
                               plan_cache=plan_cache, obs=obs)
    for key, text in queries:
        service.register(text, key=key)

    try:
        if args.execution == "async":
            import asyncio

            async def drive():
                async for outcome in service.serve(documents()):
                    report(outcome)

            asyncio.run(drive())
            summary_source = service if pooled else service.service
        else:
            for outcome in service.serve(documents()):
                report(outcome)
            summary_source = service
    finally:
        if args.backend == "processes":
            service.close()

    if args.plan_cache_file:
        saved = summary_source.plan_cache.dump(args.plan_cache_file)
        print(
            f"[plan-cache] snapshot saved: {saved} plans to "
            f"{args.plan_cache_file}",
            file=sys.stderr,
        )

    failures = sum(1 for _, accounting, _ in served if accounting["outcome"] != "ok")
    if pooled:
        totals = summary_source.metrics
        shipping = (
            f", {totals.ship_count} plans shipped ({totals.ship_bytes} B)"
            if totals.ship_count
            else ""
        )
        print(
            f"[pool] {totals.workers} workers "
            f"({'async' if args.execution == 'async' else args.backend}), "
            f"{totals.documents_served} documents "
            f"({totals.documents_failed} failed), "
            f"{len(queries)} standing queries, "
            f"{totals.parser_events_total} parser events total, "
            f"{totals.events_forwarded_total} forwarded, "
            f"{totals.events_pruned_total} pruned"
            f"{shipping}",
            file=sys.stderr,
        )
    elif per_document:
        totals = summary_source.metrics
        print(
            f"[serve] {totals.passes_completed} documents, "
            f"{len(queries)} standing queries, "
            f"{totals.parser_events_total} parser events total, "
            f"{totals.events_forwarded_total} forwarded, "
            f"{totals.events_pruned_total} pruned",
            file=sys.stderr,
        )
    if args.json:
        summary = summary_source.stats_summary()
        summary["execution"] = args.execution
        summary["backend"] = args.backend
        summary["workers"] = workers
        summary["documents"] = [
            {
                "label": label,
                "outcome": accounting["outcome"],
                "worker": accounting["worker"],
                "error": accounting["error"],
                **accounting["metrics"].as_dict(),
            }
            for label, accounting, _ in served
        ]
        summary["results"] = {
            (f"{label}/{key}" if per_document else key): stats
            for label, _, stats_by_key in served
            for key, stats in stats_by_key.items()
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
    if obs is not None:
        _finalize_observability(obs, args, summary_source, pooled)
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FluXQuery reproduction: streaming XQuery with DTD-driven buffer minimization",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="evaluate a query over a document")
    run_parser.add_argument("--query", "-q", required=True, help="XQuery file ('-' for stdin)")
    run_parser.add_argument("--input", "-i", required=True, help="XML document file ('-' for stdin)")
    run_parser.add_argument("--dtd", "-d", help="DTD file (defaults to the document's DOCTYPE)")
    run_parser.add_argument("--output", "-o", help="result file (default stdout)")
    run_parser.add_argument("--no-validate", action="store_true", help="skip DTD validation")
    run_parser.set_defaults(handler=_command_run)

    explain_parser = subparsers.add_parser(
        "explain",
        help="show the optimizer stages, buffer-bound classes, predicted "
        "cost, and chosen execution mode for a query",
    )
    explain_parser.add_argument("--query", "-q", required=True)
    explain_parser.add_argument("--dtd", "-d", help="DTD file")
    explain_parser.add_argument(
        "--document-bytes",
        type=int,
        default=None,
        metavar="N",
        help="typical document size in bytes for mode selection "
        "(default: assume 1 MiB)",
    )
    explain_parser.add_argument(
        "--document-count",
        type=int,
        default=1,
        metavar="N",
        help="how many documents the workload will serve (default: 1)",
    )
    explain_parser.add_argument(
        "--cpus",
        type=int,
        default=None,
        metavar="N",
        help="assume N usable cores for mode selection (default: detect)",
    )
    explain_parser.add_argument(
        "--plan-cache-file",
        "-p",
        metavar="PATH",
        help="read observed pass metrics from a plan-cache snapshot "
        "(written by multi --plan-cache-file) to calibrate the predicted "
        "cost with measured events",
    )
    explain_parser.set_defaults(handler=_command_explain)

    compare_parser = subparsers.add_parser("compare", help="compare engines on one query/document")
    compare_parser.add_argument("--query", "-q", required=True)
    compare_parser.add_argument("--input", "-i", required=True)
    compare_parser.add_argument("--dtd", "-d", help="DTD file")
    compare_parser.set_defaults(handler=_command_compare)

    multi_parser = subparsers.add_parser(
        "multi",
        help="run a directory of queries over one or more documents, "
        "one shared pass per document",
    )
    multi_parser.add_argument(
        "--queries", "-Q", required=True, help="directory of *.xq query files"
    )
    multi_parser.add_argument("--input", "-i", help="XML document file ('-' for stdin)")
    multi_parser.add_argument(
        "--documents",
        "-D",
        nargs="+",
        metavar="DOC",
        help="serve several XML documents in one process (the serving loop: "
        "one shared pass each, plans compiled once; '-' for stdin)",
    )
    multi_parser.add_argument(
        "--dtd", "-d", help="DTD file (defaults to the first document's DOCTYPE)"
    )
    multi_parser.add_argument(
        "--output-dir",
        "-O",
        help="directory for per-query results (default stdout; one "
        "subdirectory per document with --documents)",
    )
    multi_parser.add_argument("--json", "-j", help="write service metrics/results as JSON")
    multi_parser.add_argument("--no-validate", action="store_true", help="skip DTD validation")
    multi_parser.add_argument(
        "--execution",
        "-x",
        choices=["threads", "inline", "async", "auto"],
        default=None,
        help="per-query runtime driver: worker threads (the default, "
        "except inside --backend processes workers, where inline is the "
        "default — per-query threads there only add handoff cost), the "
        "inline round-robin scheduler on the dispatch thread, the "
        "asyncio front end over the inline scheduler, or auto — let the "
        "static cost model pick from the fleet's predicted per-event "
        "cost, the document sizes, and the machine's CPU count",
    )
    multi_parser.add_argument(
        "--workers",
        "-w",
        type=int,
        default=None,
        metavar="N",
        help="serve with a fault-isolated pool of N mirrored services "
        "sharing one plan cache: documents are sharded across the workers "
        "(overlapping ingestion), a failing document is reported and "
        "skipped instead of aborting the stream, and the exit status is "
        "nonzero if any document failed (N=1 is a pool of one — still "
        "fault-isolated; the default is the plain all-or-nothing serve "
        "loop)",
    )
    multi_parser.add_argument(
        "--backend",
        "-b",
        choices=["threads", "processes", "auto"],
        default="threads",
        help="where the pool workers run: threads in this process "
        "(default; overlapping ingestion, evaluation interleaved under "
        "the GIL), separate worker processes (each query compiled once "
        "in the parent and shipped as a pickled plan; evaluation runs in "
        "parallel on separate cores, and a crashed worker is respawned "
        "with its document reported as an error; requires --workers), or "
        "auto — let the static cost model pick backend and worker count "
        "(an explicit --workers still wins)",
    )
    multi_parser.add_argument(
        "--plan-cache-file",
        "-p",
        metavar="PATH",
        help="warm-start the plan cache from PATH when it exists and save "
        "an updated snapshot there after serving, so a restarted service "
        "skips cold compilation (keys are stable (query, DTD fingerprint) "
        "pairs, valid across processes and restarts)",
    )
    multi_parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="collect pass/pool/plan-cache metrics and stage latency "
        "histograms into one registry and write the snapshot to FILE as "
        "JSON plus FILE.prom as Prometheus text exposition (pretty-print "
        "the JSON later with `repro stats FILE`)",
    )
    multi_parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="record stage spans (pass parse/route/dispatch/evaluate/emit; "
        "pool shard/ship/respawn) as JSON-lines to FILE; one trace id per "
        "document, propagated to pool workers — including across process "
        "pipes and crash-respawns, so a document's worker-side spans merge "
        "into the same trace as its parent-side ones",
    )
    multi_parser.add_argument(
        "--log-json",
        nargs="?",
        const="-",
        metavar="FILE",
        help="write structured JSON-lines lifecycle events (register/"
        "unregister, pass start/finish, fault isolation, crash-respawn, "
        "plan shipping) to FILE, or to stderr when no FILE is given",
    )
    multi_parser.add_argument(
        "--profile",
        action="store_true",
        help="profile serving with cProfile and print a per-stage "
        "top-of-profile report to stderr (off by default; most useful "
        "without --workers — pool passes run on worker threads/processes "
        "the single profiler cannot follow)",
    )
    multi_parser.set_defaults(handler=_command_multi)

    stats_parser = subparsers.add_parser(
        "stats",
        help="pretty-print a metrics snapshot written by multi --metrics-out",
    )
    stats_parser.add_argument(
        "snapshot", help="metrics snapshot JSON file ('-' for stdin)"
    )
    stats_parser.set_defaults(handler=_command_stats)

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the in-repo static-analysis suite (lock discipline, "
        "hot-loop purity, async blocking, pickle safety)",
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: the installed "
        "repro package)",
    )
    lint_parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text; sarif emits a SARIF 2.1.0 "
        "run for code-scanning upload)",
    )
    lint_parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline file of accepted findings to subtract "
        "(see scripts/lint_baseline.json)",
    )
    lint_parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write the current findings to FILE as a new baseline and exit 0",
    )
    lint_parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="also fail (exit 1) when the --baseline file contains stale "
        "fingerprints that no current finding matches — fixed violations "
        "must leave the baseline, or the dead suppression would silently "
        "swallow a future regression with the same fingerprint",
    )
    lint_parser.add_argument(
        "--fail-on",
        metavar="CODE,...",
        default="all",
        help="exit nonzero only for these finding codes "
        "(default: all — any finding fails the run)",
    )
    lint_parser.set_defaults(handler=_command_lint)

    return parser


def main(argv: Optional[list] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
