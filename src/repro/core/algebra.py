"""Algebraic, DTD-driven optimization of normalized XQuery.

Section 3.1 of the paper describes two schema-driven algebraic optimizations
(plus structural clean-up), which this module implements:

**For-loop merging via cardinality constraints.**  Two consecutive loops over
the same path force the engine to buffer the common source; if the DTD states
that the source has at most one element (``a ∈ ||≤1 r``), the loops can be
merged into one::

    { for $x in $r/a return α }          { for $x in $r/a return α β }
    { for $x in $r/a return β }    ==>                                (a ∈ ||≤1 r)

**Elimination of unsatisfiable conditionals via language constraints.**  If a
conditional requires children whose co-occurrence the DTD forbids (the
paper's example: ``$book/author = "Goedel" and $book/editor = "Goedel"``
under the DTD of Figure 1), the condition can never hold and the conditional
is replaced by its else-branch.

**Absolute-to-relative path rewriting via cardinality constraints.**  A path
rooted at an outer variable (typically the document root, as in a join whose
inner loop iterates over ``$ROOT/site/closed_auctions/...`` inside a loop
over ``$ROOT/site/people/person``) is re-rooted at the innermost enclosing
loop variable whose binding path is a unique prefix (every step has
cardinality ≤ 1).  This turns cross-section joins into expressions over the
common ancestor's *children*, so the scheduler only buffers the joined
sections instead of the whole ancestor.

**Structural simplification.**  Empty-branch conditionals, loops over empty
sequences, and nested sequences are cleaned up so the scheduler sees small
trees.

The optimizer records which rules fired in an :class:`OptimizationReport`;
the ablation benchmark (T6) switches individual rules off through the
constructor flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.dtd.schema import DTD
from repro.xquery.analysis import (
    DOCUMENT_TYPE,
    substitute_variable,
    variable_element_types,
)
from repro.xquery.ast import DOCUMENT_VARIABLE
from repro.xquery.ast import (
    AndExpr,
    AttributeStep,
    ChildStep,
    Comparison,
    DescendantStep,
    ElementConstructor,
    EmptySequence,
    ForExpr,
    FunctionCall,
    IfExpr,
    LetExpr,
    Literal,
    NotExpr,
    OrExpr,
    PathExpr,
    SequenceExpr,
    VarRef,
    XQueryExpr,
    sequence_of,
    sequence_items,
)


@dataclass(frozen=True)
class _ScopeEntry:
    """Absolute binding path of an in-scope loop variable.

    ``steps`` is the chain of child labels from the document node; ``unique``
    records whether the DTD guarantees at most one node matches that chain
    (the precondition for using the variable as a relativization target).
    """

    steps: Tuple[str, ...]
    unique: bool


@dataclass
class OptimizationReport:
    """Records which algebraic rewrites fired during optimization."""

    merged_loops: int = 0
    eliminated_conditionals: int = 0
    simplifications: int = 0
    relativized_paths: int = 0
    notes: List[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"merged loops: {self.merged_loops}, "
            f"eliminated conditionals: {self.eliminated_conditionals}, "
            f"relativized paths: {self.relativized_paths}, "
            f"simplifications: {self.simplifications}"
        )


class AlgebraicOptimizer:
    """Applies the DTD-driven rewrite rules to a normalized query.

    Parameters
    ----------
    dtd:
        Schema used to derive constraints; ``None`` disables all
        schema-driven rules (structural simplification still runs).
    enable_loop_merging / enable_conditional_elimination / enable_simplification:
        Ablation switches for the individual rule families.
    """

    def __init__(
        self,
        dtd: Optional[DTD],
        enable_loop_merging: bool = True,
        enable_conditional_elimination: bool = True,
        enable_simplification: bool = True,
        enable_path_relativization: bool = True,
    ):
        self.dtd = dtd
        self.constraints = dtd.constraints() if dtd is not None else None
        self.enable_loop_merging = enable_loop_merging
        self.enable_conditional_elimination = enable_conditional_elimination
        self.enable_simplification = enable_simplification
        self.enable_path_relativization = enable_path_relativization
        self.report = OptimizationReport()

    # -------------------------------------------------------------- driver

    def optimize(self, expr: XQueryExpr) -> XQueryExpr:
        """Optimize a normalized query, returning the rewritten AST."""
        types = variable_element_types(expr, self.dtd)
        scopes: Dict[str, "_ScopeEntry"] = {
            DOCUMENT_VARIABLE: _ScopeEntry(steps=(), unique=True)
        }
        result = self._rewrite(expr, types, scopes)
        if self.enable_simplification:
            result = self._simplify(result)
        return result

    # ------------------------------------------------------------- rewrite

    def _rewrite(
        self, expr: XQueryExpr, types: Dict[str, str], scopes: Dict[str, "_ScopeEntry"]
    ) -> XQueryExpr:
        if isinstance(expr, SequenceExpr):
            items = [self._rewrite(item, types, scopes) for item in expr.items]
            if self.enable_loop_merging:
                items = self._merge_adjacent_loops(items, types)
            return sequence_of(items)
        if isinstance(expr, ElementConstructor):
            return ElementConstructor(
                expr.name, expr.attributes, self._rewrite(expr.content, types, scopes)
            )
        if isinstance(expr, PathExpr):
            return self._relativize_path(expr, scopes)
        if isinstance(expr, ForExpr):
            return self._rewrite_for(expr, types, scopes)
        if isinstance(expr, LetExpr):
            return LetExpr(
                expr.var,
                self._rewrite(expr.value, types, scopes),
                self._rewrite(expr.body, types, scopes),
            )
        if isinstance(expr, IfExpr):
            condition = self._rewrite(expr.condition, types, scopes)
            then_branch = self._rewrite(expr.then_branch, types, scopes)
            else_branch = self._rewrite(expr.else_branch, types, scopes)
            if self.enable_conditional_elimination and self._condition_unsatisfiable(
                condition, types
            ):
                self.report.eliminated_conditionals += 1
                self.report.notes.append(
                    f"eliminated unsatisfiable conditional: {condition.to_xquery()}"
                )
                return else_branch
            return IfExpr(condition, then_branch, else_branch)
        if isinstance(expr, Comparison):
            return Comparison(
                expr.op,
                self._rewrite(expr.left, types, scopes),
                self._rewrite(expr.right, types, scopes),
            )
        if isinstance(expr, AndExpr):
            return AndExpr(
                tuple(self._rewrite(operand, types, scopes) for operand in expr.operands)
            )
        if isinstance(expr, OrExpr):
            return OrExpr(
                tuple(self._rewrite(operand, types, scopes) for operand in expr.operands)
            )
        if isinstance(expr, NotExpr):
            return NotExpr(self._rewrite(expr.operand, types, scopes))
        if isinstance(expr, FunctionCall):
            return FunctionCall(
                expr.name,
                tuple(self._rewrite(argument, types, scopes) for argument in expr.arguments),
            )
        return expr

    def _rewrite_for(
        self, expr: ForExpr, types: Dict[str, str], scopes: Dict[str, "_ScopeEntry"]
    ) -> XQueryExpr:
        source = self._rewrite(expr.source, types, scopes)
        where = self._rewrite(expr.where, types, scopes) if expr.where is not None else None
        if isinstance(source, VarRef) and where is None and source.name in scopes:
            # The relativization turned the source into an already-bound,
            # single-valued variable: the loop degenerates to a substitution.
            self.report.relativized_paths += 0  # counted where the path was rewritten
            collapsed = substitute_variable(expr.body, expr.var, source)
            return self._rewrite(collapsed, types, scopes)
        inner_scopes = dict(scopes)
        entry = self._scope_entry_for(source, types, scopes)
        if entry is not None:
            inner_scopes[expr.var] = entry
        else:
            inner_scopes.pop(expr.var, None)
        return ForExpr(
            expr.var,
            source,
            self._rewrite(expr.body, types, inner_scopes),
            self._rewrite(where, types, inner_scopes) if where is not None else None,
        )

    # --------------------------------------------------- path relativization

    def _scope_entry_for(
        self, source: XQueryExpr, types: Dict[str, str], scopes: Dict[str, "_ScopeEntry"]
    ) -> Optional["_ScopeEntry"]:
        """Absolute binding path of a loop variable, when statically known."""
        if not isinstance(source, PathExpr) or source.var not in scopes:
            return None
        if not all(isinstance(step, ChildStep) and step.name != "*" for step in source.steps):
            return None
        base = scopes[source.var]
        unique = base.unique and self._path_at_most_once(source, types)
        return _ScopeEntry(
            steps=base.steps + tuple(step.name for step in source.steps), unique=unique
        )

    def _relativize_path(
        self, path: PathExpr, scopes: Dict[str, "_ScopeEntry"]
    ) -> XQueryExpr:
        """Re-root ``path`` at the deepest unique enclosing loop variable."""
        if not self.enable_path_relativization or self.constraints is None:
            return path
        if path.var not in scopes:
            return path
        base = scopes[path.var]
        # Compose the absolute form of the leading child-step prefix.
        leading: List[str] = []
        index = 0
        for step in path.steps:
            if isinstance(step, ChildStep) and step.name != "*":
                leading.append(step.name)
                index += 1
            else:
                break
        absolute = base.steps + tuple(leading)
        trailing = path.steps[index:]
        best_var: Optional[str] = None
        best_entry: Optional[_ScopeEntry] = None
        for var, entry in scopes.items():
            if var == path.var:
                continue
            if not entry.unique:
                continue
            if len(entry.steps) <= len(base.steps):
                continue  # no deeper than the current root: no benefit
            if len(entry.steps) > len(absolute):
                continue
            if absolute[: len(entry.steps)] != entry.steps:
                continue
            if best_entry is None or len(entry.steps) > len(best_entry.steps):
                best_var, best_entry = var, entry
        if best_var is None or best_entry is None:
            return path
        remaining = absolute[len(best_entry.steps):]
        self.report.relativized_paths += 1
        self.report.notes.append(
            f"re-rooted {path.to_xquery()} at ${best_var}"
        )
        new_steps = tuple(ChildStep(name) for name in remaining) + trailing
        if not new_steps:
            return VarRef(best_var)
        return PathExpr(best_var, new_steps)

    # --------------------------------------------------------- loop merge

    def _merge_adjacent_loops(
        self, items: List[XQueryExpr], types: Dict[str, str]
    ) -> List[XQueryExpr]:
        merged: List[XQueryExpr] = []
        for item in items:
            previous = merged[-1] if merged else None
            if (
                isinstance(item, ForExpr)
                and isinstance(previous, ForExpr)
                and self._mergeable(previous, item, types)
            ):
                body = sequence_of(
                    [
                        previous.body,
                        substitute_variable(item.body, item.var, VarRef(previous.var)),
                    ]
                )
                merged[-1] = ForExpr(previous.var, previous.source, body, None)
                self.report.merged_loops += 1
                self.report.notes.append(
                    f"merged consecutive loops over {previous.source.to_xquery()}"
                )
            else:
                merged.append(item)
        return merged

    def _mergeable(self, first: ForExpr, second: ForExpr, types: Dict[str, str]) -> bool:
        if first.where is not None or second.where is not None:
            return False
        if first.source != second.source:
            return False
        return self._path_at_most_once(first.source, types)

    def _path_at_most_once(self, source: XQueryExpr, types: Dict[str, str]) -> bool:
        """Whether the DTD guarantees that ``source`` yields at most one node."""
        if self.constraints is None or not isinstance(source, PathExpr):
            return False
        current_type = types.get(source.var)
        if current_type is None:
            return False
        for step in source.steps:
            if not isinstance(step, ChildStep) or step.name == "*":
                return False
            if current_type == DOCUMENT_TYPE:
                if self.dtd is None or step.name != self.dtd.root:
                    return False
            elif not self.constraints.at_most_once(current_type, step.name):
                return False
            current_type = step.name
        return True

    # ---------------------------------------------- conditional elimination

    def _condition_unsatisfiable(self, condition: XQueryExpr, types: Dict[str, str]) -> bool:
        """Whether the DTD implies ``condition`` can never be true.

        The check is sound but deliberately incomplete: it looks at the
        conjunction of *required paths* (paths that must be non-empty for the
        condition to possibly hold) and asks the DTD whether any pair of
        required child labels of the same variable can never co-occur, or
        whether a required label can never occur at all.
        """
        if self.constraints is None:
            return False
        required = self._required_paths(condition)
        if required is None:
            return False
        by_var: Dict[str, Set[str]] = {}
        for var, label in required:
            by_var.setdefault(var, set()).add(label)
        for var, labels in by_var.items():
            element_type = types.get(var)
            if element_type is None or element_type == DOCUMENT_TYPE:
                continue
            if self.dtd is not None and not self.dtd.has_element(element_type):
                continue
            for label in labels:
                if self.constraints.never_occurs(element_type, label):
                    return True
            if len(labels) >= 2 and not self.constraints.can_cooccur(element_type, labels):
                return True
        return False

    def _required_paths(self, condition: XQueryExpr) -> Optional[Set[Tuple[str, str]]]:
        """Paths (variable, first child label) that must be non-empty for the
        condition to hold; ``None`` when the condition's shape is not
        understood (disjunctions, negations, ...)."""
        if isinstance(condition, AndExpr):
            required: Set[Tuple[str, str]] = set()
            for operand in condition.operands:
                part = self._required_paths(operand)
                if part is None:
                    return None
                required |= part
            return required
        if isinstance(condition, Comparison):
            required = set()
            for side in (condition.left, condition.right):
                required |= self._paths_of_operand(side)
            return required
        if isinstance(condition, PathExpr):
            return self._paths_of_operand(condition)
        if isinstance(condition, FunctionCall) and condition.name == "exists":
            required = set()
            for argument in condition.arguments:
                required |= self._paths_of_operand(argument)
            return required
        return None

    @staticmethod
    def _paths_of_operand(expr: XQueryExpr) -> Set[Tuple[str, str]]:
        if isinstance(expr, PathExpr) and expr.steps:
            first = expr.steps[0]
            if isinstance(first, ChildStep) and first.name != "*":
                return {(expr.var, first.name)}
        return set()

    # ------------------------------------------------------ simplification

    def _simplify(self, expr: XQueryExpr) -> XQueryExpr:
        if isinstance(expr, SequenceExpr):
            items = [self._simplify(item) for item in expr.items]
            items = [item for item in items if not isinstance(item, EmptySequence)]
            result = sequence_of(items)
            if result != expr:
                self.report.simplifications += 1
            return result
        if isinstance(expr, ElementConstructor):
            return ElementConstructor(expr.name, expr.attributes, self._simplify(expr.content))
        if isinstance(expr, ForExpr):
            source = self._simplify(expr.source)
            body = self._simplify(expr.body)
            if isinstance(source, EmptySequence) or isinstance(body, EmptySequence):
                self.report.simplifications += 1
                return EmptySequence()
            where = self._simplify(expr.where) if expr.where is not None else None
            return ForExpr(expr.var, source, body, where)
        if isinstance(expr, LetExpr):
            return LetExpr(expr.var, self._simplify(expr.value), self._simplify(expr.body))
        if isinstance(expr, IfExpr):
            condition = self._simplify(expr.condition)
            then_branch = self._simplify(expr.then_branch)
            else_branch = self._simplify(expr.else_branch)
            if isinstance(then_branch, EmptySequence) and isinstance(
                else_branch, EmptySequence
            ):
                self.report.simplifications += 1
                return EmptySequence()
            if isinstance(condition, Literal):
                self.report.simplifications += 1
                return then_branch if condition.value else else_branch
            if isinstance(condition, FunctionCall) and condition.name in ("true", "false"):
                self.report.simplifications += 1
                return then_branch if condition.name == "true" else else_branch
            return IfExpr(condition, then_branch, else_branch)
        return expr


def optimize_query(
    expr: XQueryExpr, dtd: Optional[DTD], **flags
) -> Tuple[XQueryExpr, OptimizationReport]:
    """Convenience wrapper: optimize ``expr`` and return (ast, report)."""
    optimizer = AlgebraicOptimizer(dtd, **flags)
    optimized = optimizer.optimize(expr)
    return optimized, optimizer.report
