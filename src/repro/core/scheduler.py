"""Schema-based scheduling: rewriting normalized XQuery into FluX.

This is the final step of the paper's optimizer (Section 3.1): "the
pre-optimized XQuery is rewritten into FluX, with process-stream extensions
enabling a streaming execution of the query.  The key idea here is to exploit
order constraints defined by the DTD."

Scheduling algorithm (reconstructed; see DESIGN.md §5.2)
---------------------------------------------------------

The scheduler walks the query top-down, always knowing the *active stream
variable* — the innermost variable whose element's children are currently
arriving on the stream (initially the document variable ``$ROOT``).  For a
sequence of output items ``o1 … on`` evaluated in the scope of stream
variable ``$x`` (bound to elements of DTD type ``t``):

* an item that does not touch ``$x``'s content is *immediate*: it is emitted
  in sequence order, attached to an ``on-first past(X)`` handler where ``X``
  is the union of the child labels needed by the items before it (so it is
  emitted only after their output is complete);
* an item ``for $z in $x/l return B`` becomes a **streaming** ``on l as $z``
  handler iff (a) ``B`` reads nothing from the content of any enclosing
  stream variable other than ``$z`` and (b) for every earlier item ``o_j``
  and every label ``m`` it needs, the DTD order constraint ``m < l`` holds
  (all ``m`` children precede all ``l`` children — so emitting ``o_i`` on
  arrival cannot overtake pending earlier output);
* every other item is **buffered**: it is attached to an
  ``on-first past(X_i)`` handler with ``X_i = dep(o_1) ∪ … ∪ dep(o_i)`` and
  evaluated from buffers when the DTD guarantees that none of those labels
  can occur anymore;
* consecutive buffered items with identical firing conditions are merged
  into a single handler.

If only a single item of the sequence touches the stream and that item is a
constructor (or a conditional over already-known values), the scheduler
simply recurses into it — no ``process-stream`` is needed at this level;
this is what produces the nested shape of the paper's example queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence as Seq, Set, Tuple

from repro.dtd.schema import DTD
from repro.core.flux import (
    FBufferedExpr,
    FConstructor,
    FCopyVar,
    FIf,
    FluxExpr,
    FluxQuery,
    FProcessStream,
    FSequence,
    FText,
    OnFirstHandler,
    OnHandler,
    flux_sequence,
)
from repro.xquery.analysis import (
    DOCUMENT_TYPE,
    WHOLE_SUBTREE,
    child_label_dependencies,
    element_type_children,
    variable_element_types,
)
from repro.xquery.ast import (
    ChildStep,
    DOCUMENT_VARIABLE,
    ElementConstructor,
    EmptySequence,
    ForExpr,
    IfExpr,
    Literal,
    PathExpr,
    SequenceExpr,
    VarRef,
    XQueryExpr,
    sequence_items,
)


@dataclass
class SchedulingReport:
    """Statistics about the scheduling decisions (used by benches/tests).

    ``buffer_reasons`` records, per buffered handler in scheduling order,
    *why* the scheduler could not stream that item — the decision trail
    ``repro explain`` prints next to the analyzer's buffer classes.
    """

    streaming_handlers: int = 0
    buffered_handlers: int = 0
    copy_handlers: int = 0
    buffer_reasons: List[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"streaming handlers: {self.streaming_handlers}, "
            f"buffered handlers: {self.buffered_handlers}, "
            f"streamed copies: {self.copy_handlers}"
        )


class _Scheduler:
    """Holds the DTD, the constraint oracle, and the inferred variable types."""

    def __init__(self, dtd: Optional[DTD], types: Dict[str, str], use_order_constraints: bool):
        self.dtd = dtd
        self.constraints = dtd.constraints() if dtd is not None else None
        self.types = types
        self.use_order_constraints = use_order_constraints
        self.report = SchedulingReport()

    # --------------------------------------------------------- constraints

    def _order_holds(self, element_type: Optional[str], before: str, after: str) -> bool:
        if not self.use_order_constraints:
            return False
        if element_type == DOCUMENT_TYPE:
            # The document node has exactly one child (the root element).
            return True
        if self.constraints is None or element_type is None:
            return False
        if not self.dtd.has_element(element_type):
            return False
        if before == WHOLE_SUBTREE or after == WHOLE_SUBTREE:
            return False
        return self.constraints.order_holds(element_type, before, after)

    def _all_labels(self, element_type: Optional[str]) -> FrozenSet[str]:
        if element_type == DOCUMENT_TYPE and self.dtd is not None:
            return frozenset({self.dtd.root})
        return element_type_children(self.dtd, element_type)

    # ----------------------------------------------------------- translate

    def translate(
        self, expr: XQueryExpr, stream_var: str, stream_type: Optional[str],
        enclosing_vars: Tuple[str, ...],
    ) -> FluxExpr:
        """Translate ``expr`` evaluated in the scope of ``stream_var``."""
        items = list(sequence_items(expr))
        if not items:
            return FSequence(())
        dependent_indexes = [
            index
            for index, item in enumerate(items)
            if child_label_dependencies(item, stream_var)
        ]
        if not dependent_indexes:
            return flux_sequence(self._immediate(item) for item in items)
        if len(dependent_indexes) == 1:
            index = dependent_indexes[0]
            single = items[index]
            translated = self._translate_single_stream_item(
                single, stream_var, stream_type, enclosing_vars
            )
            if translated is not None:
                parts = [
                    translated if i == index else self._immediate(item)
                    for i, item in enumerate(items)
                ]
                return flux_sequence(parts)
        return self._schedule_sequence(items, stream_var, stream_type, enclosing_vars)

    def _translate_single_stream_item(
        self,
        item: XQueryExpr,
        stream_var: str,
        stream_type: Optional[str],
        enclosing_vars: Tuple[str, ...],
    ) -> Optional[FluxExpr]:
        """Handle the "only one item touches the stream" shortcuts.

        Returns ``None`` when the item still requires sequence scheduling
        (loops, copies, buffered expressions).
        """
        if isinstance(item, ElementConstructor):
            return FConstructor(
                item.name,
                item.attributes,
                self.translate(item.content, stream_var, stream_type, enclosing_vars),
            )
        if isinstance(item, VarRef) and item.name == stream_var:
            # Copying the stream element itself: stream its events through.
            self.report.copy_handlers += 1
            return FCopyVar(stream_var)
        if isinstance(item, IfExpr):
            condition_deps = any(
                child_label_dependencies(item.condition, var)
                for var in enclosing_vars + (stream_var,)
            )
            if not condition_deps:
                return FIf(
                    item.condition,
                    self.translate(item.then_branch, stream_var, stream_type, enclosing_vars),
                    self.translate(item.else_branch, stream_var, stream_type, enclosing_vars),
                )
        return None

    # ---------------------------------------------------------- scheduling

    def _schedule_sequence(
        self,
        items: Seq[XQueryExpr],
        stream_var: str,
        stream_type: Optional[str],
        enclosing_vars: Tuple[str, ...],
    ) -> FluxExpr:
        handlers: List = []
        prior_labels: Set[str] = set()
        streaming_labels: Set[str] = set()
        for item in items:
            deps = child_label_dependencies(item, stream_var)
            if not deps:
                # Immediate item: emit once all earlier output is complete.
                condition = self._condition_labels(prior_labels, stream_type)
                self._append_on_first(handlers, condition, self._immediate(item))
                continue
            if self._is_streamable(
                item, stream_var, stream_type, prior_labels, enclosing_vars, streaming_labels
            ):
                label = item.source.steps[0].name  # type: ignore[union-attr]
                body = self.translate(
                    item.body, item.var, self._child_type(label), enclosing_vars + (stream_var,)
                )
                handlers.append(OnHandler(label, item.var, body))
                self.report.streaming_handlers += 1
                prior_labels.add(label)
                streaming_labels.add(label)
                continue
            # Buffered item.
            condition = self._condition_labels(prior_labels | set(deps), stream_type)
            self._append_on_first(handlers, condition, FBufferedExpr(item))
            self.report.buffered_handlers += 1
            self.report.buffer_reasons.append(
                self._buffer_reason(
                    item, stream_var, stream_type, prior_labels, enclosing_vars,
                    streaming_labels,
                )
            )
            prior_labels.update(deps)
        merged = self._merge_handlers(handlers)
        return FProcessStream(stream_var, stream_type or DOCUMENT_TYPE, tuple(merged))

    def _append_on_first(
        self, handlers: List, condition: FrozenSet[str], body: FluxExpr
    ) -> None:
        handlers.append(OnFirstHandler(condition, body))

    @staticmethod
    def _merge_handlers(handlers: List) -> List:
        merged: List = []
        for handler in handlers:
            previous = merged[-1] if merged else None
            if (
                isinstance(handler, OnFirstHandler)
                and isinstance(previous, OnFirstHandler)
                and previous.past_labels == handler.past_labels
            ):
                merged[-1] = OnFirstHandler(
                    previous.past_labels, flux_sequence([previous.body, handler.body])
                )
            else:
                merged.append(handler)
        return merged

    def _condition_labels(
        self, labels: Set[str], stream_type: Optional[str]
    ) -> FrozenSet[str]:
        if WHOLE_SUBTREE in labels:
            expanded = set(labels - {WHOLE_SUBTREE}) | set(self._all_labels(stream_type))
            if not expanded:
                # No schema knowledge: fire only when the element closes,
                # expressed as "wait for every possible label" = the unknown
                # whole-subtree marker, which the runtime maps to end-of-element.
                return frozenset({WHOLE_SUBTREE})
            return frozenset(expanded)
        return frozenset(labels)

    @staticmethod
    def _child_type(label: str) -> str:
        """The element type of a child labelled ``label`` is the label itself."""
        return label

    # --------------------------------------------------------- streamable?

    def _is_streamable(
        self,
        item: XQueryExpr,
        stream_var: str,
        stream_type: Optional[str],
        prior_labels: Set[str],
        enclosing_vars: Tuple[str, ...],
        streaming_labels: Set[str],
    ) -> bool:
        if not isinstance(item, ForExpr) or item.where is not None:
            return False
        source = item.source
        if not isinstance(source, PathExpr) or source.var != stream_var:
            return False
        if len(source.steps) != 1 or not isinstance(source.steps[0], ChildStep):
            return False
        label = source.steps[0].name
        if label == "*":
            return False
        if label in streaming_labels:
            # At most one streaming handler per label: a second loop over the
            # same child label is evaluated from buffers instead.
            return False
        # The body must not read content of any enclosing stream variable
        # (including the current one) — only the freshly bound loop variable.
        for outer in enclosing_vars + (stream_var,):
            if child_label_dependencies(item.body, outer):
                return False
        # Order constraints against everything already scheduled.
        for previous in prior_labels:
            if previous == WHOLE_SUBTREE:
                return False
            if not self._order_holds(stream_type, previous, label):
                return False
        return True

    def _buffer_reason(
        self,
        item: XQueryExpr,
        stream_var: str,
        stream_type: Optional[str],
        prior_labels: Set[str],
        enclosing_vars: Tuple[str, ...],
        streaming_labels: Set[str],
    ) -> str:
        """Why :meth:`_is_streamable` rejected ``item`` (first failing check).

        Mirrors the checks in order, so the recorded reason is the one
        that actually forced buffering.  Only called for items already
        decided buffered — the fall-through return covers drift between
        the two methods without ever mislabeling a streamed item.
        """
        if not isinstance(item, ForExpr):
            return "not a child-axis loop: evaluated from buffers"
        if item.where is not None:
            return "loop carries a where clause: evaluated from buffers"
        source = item.source
        if not isinstance(source, PathExpr) or source.var != stream_var:
            return (
                f"loop source is not a path on the stream variable "
                f"{stream_var}: evaluated from buffers"
            )
        if len(source.steps) != 1 or not isinstance(source.steps[0], ChildStep):
            return "loop path is not a single child step: evaluated from buffers"
        label = source.steps[0].name
        if label == "*":
            return "wildcard child step: evaluated from buffers"
        if label in streaming_labels:
            return (
                f"a streaming handler for <{label}> already exists: "
                "second loop over the same label is evaluated from buffers"
            )
        for outer in enclosing_vars + (stream_var,):
            if child_label_dependencies(item.body, outer):
                return (
                    f"loop body reads content of enclosing stream variable "
                    f"{outer}: evaluated from buffers"
                )
        for previous in prior_labels:
            if previous == WHOLE_SUBTREE:
                return (
                    "earlier output needs the whole subtree: "
                    "document order gives no ordering guarantee"
                )
            if not self._order_holds(stream_type, previous, label):
                return (
                    f"DTD gives no guarantee that <{previous}> precedes "
                    f"<{label}> under {stream_type or 'the document'}: "
                    "out-of-order arrival must buffer"
                )
        return "scheduler chose buffering"

    # ------------------------------------------------------------ immediate

    def _immediate(self, expr: XQueryExpr) -> FluxExpr:
        """Translate an expression that does not touch the active stream."""
        if isinstance(expr, Literal):
            value = expr.value
            if isinstance(value, float) and value.is_integer():
                value = int(value)
            return FText(str(value))
        if isinstance(expr, EmptySequence):
            return FSequence(())
        if isinstance(expr, SequenceExpr):
            return flux_sequence(self._immediate(item) for item in expr.items)
        if isinstance(expr, ElementConstructor):
            return FConstructor(expr.name, expr.attributes, self._immediate(expr.content))
        return FBufferedExpr(expr)


def schedule_query(
    expr: XQueryExpr,
    dtd: Optional[DTD],
    use_order_constraints: bool = True,
) -> Tuple[FluxQuery, SchedulingReport]:
    """Rewrite a normalized (and optionally algebraically optimized) XQuery
    expression into a FluX query.

    ``use_order_constraints=False`` disables the DTD order-constraint
    reasoning, forcing every non-first sub-expression into buffered
    ``on-first`` handlers — the ablation baseline of benchmark T6.
    """
    types = variable_element_types(expr, dtd)
    scheduler = _Scheduler(dtd, types, use_order_constraints)
    body = scheduler.translate(expr, DOCUMENT_VARIABLE, DOCUMENT_TYPE, ())
    return FluxQuery(body, dtd), scheduler.report
