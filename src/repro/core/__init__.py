"""Core of the reproduction: the FluX query language and the optimizer.

This package contains the paper's primary contribution:

* :mod:`repro.core.flux` — the FluX query language AST (``process-stream``,
  ``on`` and ``on-first past(...)`` handlers) and its pretty-printer;
* :mod:`repro.core.normalform` — rewriting XQuery into the normal form the
  optimizer operates on;
* :mod:`repro.core.algebra` — DTD-driven algebraic optimizations
  (cardinality-based for-loop merging, elimination of unsatisfiable
  conditionals, structural simplification);
* :mod:`repro.core.scheduler` — the schema-based scheduling algorithm that
  rewrites normalized XQuery into FluX, turning sub-expressions into
  streaming ``on`` handlers whenever order constraints allow and into
  buffered ``on-first`` handlers otherwise;
* :mod:`repro.core.safety` — the safety check of FluX queries w.r.t. a DTD;
* :mod:`repro.core.optimizer` — the end-to-end pipeline
  (parse → normalize → optimize → schedule → check).
"""

from repro.core.flux import (
    FBufferedExpr,
    FConstructor,
    FCopyVar,
    FIf,
    FluxExpr,
    FluxQuery,
    FProcessStream,
    FSequence,
    FText,
    OnFirstHandler,
    OnHandler,
)
from repro.core.normalform import normalize
from repro.core.algebra import AlgebraicOptimizer, OptimizationReport
from repro.core.scheduler import schedule_query
from repro.core.safety import SafetyViolation, check_safety
from repro.core.optimizer import OptimizerPipeline, OptimizedQuery, compile_xquery

__all__ = [
    "FluxExpr",
    "FluxQuery",
    "FSequence",
    "FText",
    "FConstructor",
    "FCopyVar",
    "FBufferedExpr",
    "FIf",
    "FProcessStream",
    "OnHandler",
    "OnFirstHandler",
    "normalize",
    "AlgebraicOptimizer",
    "OptimizationReport",
    "schedule_query",
    "check_safety",
    "SafetyViolation",
    "OptimizerPipeline",
    "OptimizedQuery",
    "compile_xquery",
]
