"""End-to-end optimizer pipeline: XQuery text → optimized FluX query.

This module wires together the stages shown in Figure 2 of the paper
("Query Compiler" box on the optimizer side):

1. parse the XQuery (``repro.xquery.parser``),
2. transform into normal form (``repro.core.normalform``),
3. algebraic optimization using DTD constraints (``repro.core.algebra``),
4. translation into FluX via schema-based scheduling
   (``repro.core.scheduler``),
5. safety check of the resulting FluX query (``repro.core.safety``).

The pipeline records the intermediate artefacts so examples, tests and the
ablation benchmarks can inspect every stage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.dtd.parser import parse_dtd
from repro.dtd.schema import DTD
from repro.core.algebra import AlgebraicOptimizer, OptimizationReport
from repro.core.flux import FluxQuery
from repro.core.normalform import normalize
from repro.core.safety import SafetyViolation, assert_safe, check_safety
from repro.core.scheduler import SchedulingReport, schedule_query
from repro.xquery.ast import XQueryExpr
from repro.xquery.parser import parse_xquery


@dataclass
class OptimizedQuery:
    """The result of running the optimizer pipeline on one XQuery."""

    source: str
    parsed: XQueryExpr
    normalized: XQueryExpr
    optimized: XQueryExpr
    flux: FluxQuery
    dtd: Optional[DTD]
    algebra_report: OptimizationReport
    scheduling_report: SchedulingReport
    safety_violations: List[SafetyViolation] = field(default_factory=list)
    optimize_seconds: float = 0.0
    #: Elapsed seconds per pipeline stage, in execution order (parse,
    #: normalize, optimize, schedule, safety).  Default-valued so plan
    #: artifacts pickled before this field existed still load.
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def is_safe(self) -> bool:
        """Whether the generated FluX query passed the safety check."""
        return not self.safety_violations

    def describe(self) -> str:
        """Human-readable multi-stage description (used by examples)."""
        lines = [
            "== XQuery (normalized) ==",
            self.normalized.to_xquery(),
            "== XQuery (optimized) ==",
            self.optimized.to_xquery(),
            f"   [{self.algebra_report.summary()}]",
            "== FluX ==",
            self.flux.to_flux_syntax(),
            f"   [{self.scheduling_report.summary()}]",
        ]
        return "\n".join(lines)


class OptimizerPipeline:
    """Configurable optimizer pipeline.

    Parameters
    ----------
    dtd:
        The schema (a :class:`DTD` or DTD source text); ``None`` disables all
        schema-driven optimizations (the query still runs, with maximal
        buffering).
    enable_loop_merging / enable_conditional_elimination / enable_path_relativization:
        Ablation switches for the algebraic rules (benchmarks T6 and F7).
    use_order_constraints:
        Ablation switch for the order-constraint-driven scheduling; when off,
        only the first sub-expression of each scope can stream and everything
        else is buffered.
    strict_safety:
        When true (default) an unsafe scheduling result raises
        :class:`~repro.errors.UnsafeFluxQueryError`; the scheduler never
        produces unsafe queries, so this is an internal assertion.
    """

    def __init__(
        self,
        dtd: Union[DTD, str, None] = None,
        enable_loop_merging: bool = True,
        enable_conditional_elimination: bool = True,
        enable_path_relativization: bool = True,
        use_order_constraints: bool = True,
        strict_safety: bool = True,
    ):
        if isinstance(dtd, str):
            dtd = parse_dtd(dtd)
        self.dtd = dtd
        self.enable_loop_merging = enable_loop_merging
        self.enable_conditional_elimination = enable_conditional_elimination
        self.enable_path_relativization = enable_path_relativization
        self.use_order_constraints = use_order_constraints
        self.strict_safety = strict_safety

    def config_fingerprint(self) -> str:
        """A stable digest of the pipeline's optimization switches.

        Plans are only interchangeable between pipelines with identical
        configuration; the plan cache includes this in its keys so ablation
        pipelines never share entries with the default one.
        """
        flags = (
            self.enable_loop_merging,
            self.enable_conditional_elimination,
            self.enable_path_relativization,
            self.use_order_constraints,
            self.strict_safety,
        )
        return "".join("1" if flag else "0" for flag in flags)

    def compile(self, query: Union[str, XQueryExpr]) -> OptimizedQuery:
        """Run the full pipeline on ``query`` (XQuery text or AST)."""
        perf = time.perf_counter
        started = perf()
        if isinstance(query, str):
            source = query
            parsed = parse_xquery(query)
        else:
            parsed = query
            source = query.to_xquery()
        stage_seconds: Dict[str, float] = {"parse": perf() - started}
        mark = perf()
        normalized = normalize(parsed)
        stage_seconds["normalize"] = perf() - mark
        mark = perf()
        optimizer = AlgebraicOptimizer(
            self.dtd,
            enable_loop_merging=self.enable_loop_merging,
            enable_conditional_elimination=self.enable_conditional_elimination,
            enable_path_relativization=self.enable_path_relativization,
        )
        optimized = optimizer.optimize(normalized)
        stage_seconds["optimize"] = perf() - mark
        mark = perf()
        flux, scheduling_report = schedule_query(
            optimized, self.dtd, use_order_constraints=self.use_order_constraints
        )
        stage_seconds["schedule"] = perf() - mark
        mark = perf()
        violations = check_safety(flux, self.dtd)
        if violations and self.strict_safety:
            assert_safe(flux, self.dtd)
        stage_seconds["safety"] = perf() - mark
        elapsed = perf() - started
        return OptimizedQuery(
            source=source,
            parsed=parsed,
            normalized=normalized,
            optimized=optimized,
            flux=flux,
            dtd=self.dtd,
            algebra_report=optimizer.report,
            scheduling_report=scheduling_report,
            safety_violations=violations,
            optimize_seconds=elapsed,
            stage_seconds=stage_seconds,
        )


def compile_xquery(query: Union[str, XQueryExpr], dtd: Union[DTD, str, None] = None, **flags) -> OptimizedQuery:
    """Convenience one-shot compilation with default pipeline settings."""
    return OptimizerPipeline(dtd, **flags).compile(query)
