"""Safety of FluX queries with respect to a DTD.

Section 2 of the paper: "We call a FluX query *safe* for a given DTD if,
informally, it is guaranteed that XQuery subexpressions (such as the for-loop
in the query above) do not refer to paths that may still be encountered in
the stream."

Concretely, for every ``process-stream $x`` over element type ``t`` and every
``on-first past(X)`` handler whose body reads child label ``l`` of ``$x``,
the DTD must guarantee that when the ``past(X)`` condition first becomes
true, no further ``l`` child can arrive.  This is decided exactly on the
content-model automaton of ``t``:

    in every automaton state where no label of ``X`` is reachable anymore,
    ``l`` must not be reachable either.

Streaming ``on`` handlers are checked not to read any sibling content of the
stream variable (they may only use the freshly bound child).

The scheduler only emits safe queries by construction; the checker exists so
that hand-written FluX (and the deliberately unsafe example from Section 2 of
the paper) can be diagnosed, and as an internal assertion in the end-to-end
pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.dtd.schema import DTD
from repro.errors import UnsafeFluxQueryError
from repro.core.flux import (
    FBufferedExpr,
    FConstructor,
    FCopyVar,
    FIf,
    FluxExpr,
    FluxQuery,
    FProcessStream,
    FSequence,
    FText,
    OnFirstHandler,
    OnHandler,
)
from repro.xquery.analysis import DOCUMENT_TYPE, WHOLE_SUBTREE, child_label_dependencies
from repro.xquery.ast import XQueryExpr


@dataclass(frozen=True)
class SafetyViolation:
    """One reason a FluX query is unsafe for the DTD."""

    stream_var: str
    element_type: str
    handler: str
    label: str
    reason: str

    def __str__(self) -> str:  # pragma: no cover - message formatting
        return (
            f"process-stream ${self.stream_var} ({self.element_type}), "
            f"{self.handler}: {self.reason} (label {self.label!r})"
        )


def check_safety(
    query: FluxQuery, dtd: Optional[DTD] = None, strict_firing: bool = False
) -> List[SafetyViolation]:
    """Return all safety violations of ``query`` w.r.t. ``dtd``.

    An empty list means the query is safe.  When no DTD is available the
    only checkable property is that streaming handlers do not read sibling
    content; ``on-first`` handlers are then assumed to fire at element end,
    which is always safe.

    ``strict_firing`` selects the firing-point convention:

    * ``False`` (default, matching this library's runtime): an ``on-first``
      handler fires only after the child whose arrival made the condition
      certain has been *completely* read, so that child is available in the
      buffers.
    * ``True`` (the stricter convention of the paper's Section 2 example):
      the handler fires as soon as the triggering child's start tag is seen,
      before the child itself is buffered — under this convention the
      handler body must not read the triggering label.  The paper's modified
      query reading ``$book/price`` under ``book ((title|author)*, price)``
      is unsafe exactly in this sense.
    """
    dtd = dtd if dtd is not None else query.dtd
    violations: List[SafetyViolation] = []
    _check_expr(query.body, dtd, violations, strict_firing)
    return violations


def assert_safe(query: FluxQuery, dtd: Optional[DTD] = None) -> None:
    """Raise :class:`UnsafeFluxQueryError` if ``query`` is not safe."""
    violations = check_safety(query, dtd)
    if violations:
        details = "; ".join(str(violation) for violation in violations)
        raise UnsafeFluxQueryError(f"FluX query is unsafe for the DTD: {details}")


# ---------------------------------------------------------------- internals


def _check_expr(
    expr: FluxExpr, dtd: Optional[DTD], out: List[SafetyViolation], strict_firing: bool = False
) -> None:
    if isinstance(expr, FProcessStream):
        _check_process_stream(expr, dtd, out, strict_firing)
        return
    for child in expr.children():
        _check_expr(child, dtd, out, strict_firing)


def _check_process_stream(
    node: FProcessStream,
    dtd: Optional[DTD],
    out: List[SafetyViolation],
    strict_firing: bool = False,
) -> None:
    for handler in node.handlers:
        if isinstance(handler, OnHandler):
            deps = _body_dependencies(handler.body, node.var)
            for label in sorted(deps):
                out.append(
                    SafetyViolation(
                        stream_var=node.var,
                        element_type=node.element_type,
                        handler=f"on {handler.label}",
                        label=label,
                        reason=(
                            "a streaming handler may only use its bound child, "
                            "but the body reads sibling content of the stream variable"
                        ),
                    )
                )
        else:
            _check_on_first(node, handler, dtd, out, strict_firing)
        _check_expr(handler.body, dtd, out, strict_firing)


def _check_on_first(
    node: FProcessStream,
    handler: OnFirstHandler,
    dtd: Optional[DTD],
    out: List[SafetyViolation],
    strict_firing: bool = False,
) -> None:
    deps = _body_dependencies(handler.body, node.var)
    if not deps:
        return
    condition = handler.past_labels
    if WHOLE_SUBTREE in condition:
        # The handler only fires when the element closes; everything is past.
        return
    automaton = _automaton_for(node.element_type, dtd)
    for label in sorted(deps):
        if label == WHOLE_SUBTREE:
            needed: FrozenSet[str] = (
                frozenset(automaton.labels) if automaton is not None else frozenset()
            )
        else:
            needed = frozenset({label})
        if not needed:
            continue
        if not _past_implies_past(automaton, condition, needed, strict_firing):
            out.append(
                SafetyViolation(
                    stream_var=node.var,
                    element_type=node.element_type,
                    handler=f"on-first past({','.join(sorted(condition))})",
                    label=label,
                    reason=(
                        "the handler body reads a path that may still be "
                        "encountered on the stream when the handler fires"
                    ),
                )
            )


def _body_dependencies(body: FluxExpr, var: str) -> FrozenSet[str]:
    """Child labels of ``$var`` read anywhere in a handler body."""
    labels: set = set()
    _collect_body_deps(body, var, labels)
    return frozenset(labels)


def _collect_body_deps(body: FluxExpr, var: str, out: set) -> None:
    if isinstance(body, FBufferedExpr):
        out.update(child_label_dependencies(body.expr, var))
        return
    if isinstance(body, FIf):
        out.update(child_label_dependencies(body.condition, var))
    if isinstance(body, FCopyVar) and body.var == var:
        out.add(WHOLE_SUBTREE)
        return
    if isinstance(body, FProcessStream):
        # A nested stream over a different variable: its buffered expressions
        # may still reference the outer variable, so keep descending.
        for handler in body.handlers:
            _collect_body_deps(handler.body, var, out)
        return
    for child in body.children():
        _collect_body_deps(child, var, out)


def _automaton_for(element_type: str, dtd: Optional[DTD]):
    if dtd is None:
        return None
    if element_type == DOCUMENT_TYPE:
        return None
    if not dtd.has_element(element_type):
        return None
    return dtd.automaton(element_type)


def _past_implies_past(
    automaton, condition: FrozenSet[str], needed: FrozenSet[str], strict_firing: bool = False
) -> bool:
    """Whether ``past(condition)`` implies ``past(needed)`` in every state.

    With no automaton (no DTD, the document pseudo-type, or an undeclared
    element) the runtime can only fire the handler when the element closes,
    at which point everything is past — that is always safe.
    """
    if automaton is None:
        return True
    if automaton.allows_any:
        return False
    if not strict_firing and needed <= condition:
        return True
    for state in range(automaton.state_count):
        reachable = automaton.reachable_labels(state)
        condition_past = not (reachable & condition)
        needed_still_possible = bool(reachable & needed)
        if condition_past and needed_still_possible:
            return False
    if strict_firing:
        # Under strict firing the handler runs before the triggering child is
        # read: for every transition that makes the condition become true,
        # the needed labels must already be past *before* that transition.
        for state in range(automaton.state_count):
            reachable_before = automaton.reachable_labels(state)
            if not (reachable_before & condition):
                continue  # condition already held before this state's edges
            for label, successor in automaton.transitions_from(state).items():
                reachable_after = automaton.reachable_labels(successor)
                becomes_true = not (reachable_after & condition)
                if becomes_true and (reachable_before & needed):
                    return False
    return True
