"""The FluX query language.

FluX (Section 2 of the paper) extends the main structures of XQuery with the
``process-stream`` construct for event-based query processing:

.. code-block:: none

    process-stream $x:
        on a as $y return { ... };
        on-first past(a, b) return { ... }

A ``process-stream $x`` expression consists of handlers that process the
children of the node bound to ``$x`` from left to right:

* an ``on a as $y`` handler fires on each child labelled ``a``;
* an ``on-first past(X)`` handler fires exactly once, as soon as the DTD
  implies that no further child with a label in ``X`` can be encountered; its
  body may safely read buffered ``$x/l`` paths for labels ``l`` that are
  guaranteed to be past.

The AST below also carries the *embedded XQuery* expressions that buffered
handlers evaluate (``FBufferedExpr``), the streaming deep-copy of a bound
variable (``FCopyVar``), conditionals over already-available data (``FIf``),
and plain output construction (``FConstructor``/``FText``/``FSequence``).

:class:`FluxQuery` wraps a FluX expression tree together with the DTD it was
scheduled for.  ``to_flux_syntax`` renders the query in the concrete syntax
used in the paper, which the examples print and the tests assert against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Iterator, List, Optional, Tuple, Union

from repro.dtd.schema import DTD
from repro.xquery.ast import XQueryExpr


class FluxExpr:
    """Base class for FluX expression nodes."""

    __slots__ = ()

    def children(self) -> Tuple["FluxExpr", ...]:
        """Direct FluX sub-expressions."""
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}"


@dataclass(frozen=True, repr=False)
class FSequence(FluxExpr):
    """A sequence of FluX expressions, produced in order."""

    items: Tuple[FluxExpr, ...]

    def children(self) -> Tuple[FluxExpr, ...]:
        return self.items


@dataclass(frozen=True, repr=False)
class FText(FluxExpr):
    """Literal text written to the output."""

    text: str


@dataclass(frozen=True, repr=False)
class FConstructor(FluxExpr):
    """An element constructor: the start tag is emitted, the content is
    evaluated, then the end tag is emitted."""

    name: str
    attributes: Tuple[Tuple[str, str], ...]
    content: FluxExpr

    def children(self) -> Tuple[FluxExpr, ...]:
        return (self.content,)


@dataclass(frozen=True, repr=False)
class FCopyVar(FluxExpr):
    """Deep-copy the node bound to ``$var`` to the output.

    When ``$var`` is the active stream element and its children have not been
    consumed, the copy is performed by streaming the element's events through
    to the output with constant memory; otherwise the bound (buffered) tree is
    serialized.
    """

    var: str


@dataclass(frozen=True, repr=False)
class FBufferedExpr(FluxExpr):
    """An embedded XQuery expression evaluated against buffers and bindings.

    This is how ``on-first`` handler bodies (and any sub-expression the
    scheduler could not stream) are represented: the expression is evaluated
    by the tree evaluator over the buffered paths of the enclosing
    ``process-stream`` variables.
    """

    expr: XQueryExpr


@dataclass(frozen=True, repr=False)
class FIf(FluxExpr):
    """A conditional whose condition is evaluable from bindings/buffers at
    the point it is reached (e.g. attribute tests on stream variables)."""

    condition: XQueryExpr
    then_branch: FluxExpr
    else_branch: FluxExpr

    def children(self) -> Tuple[FluxExpr, ...]:
        return (self.then_branch, self.else_branch)


@dataclass(frozen=True, repr=False)
class OnHandler:
    """``on <label> as $<var> return <body>`` — fires on each matching child."""

    label: str
    var: str
    body: FluxExpr


@dataclass(frozen=True, repr=False)
class OnFirstHandler:
    """``on-first past(<labels>) return <body>`` — fires exactly once, as soon
    as no child with a label in ``labels`` can occur anymore.

    An empty label set means the handler fires immediately when the
    ``process-stream`` scope is entered.
    """

    past_labels: FrozenSet[str]
    body: FluxExpr


Handler = Union[OnHandler, OnFirstHandler]


@dataclass(frozen=True, repr=False)
class FProcessStream(FluxExpr):
    """``process-stream $var`` over an element of type ``element_type``.

    Handlers are ordered: their order is the output order of the original
    XQuery sub-expressions they implement, which the runtime preserves.
    """

    var: str
    element_type: str
    handlers: Tuple[Handler, ...]

    def children(self) -> Tuple[FluxExpr, ...]:
        return tuple(handler.body for handler in self.handlers)

    def on_handlers(self) -> List[OnHandler]:
        return [handler for handler in self.handlers if isinstance(handler, OnHandler)]

    def on_first_handlers(self) -> List[OnFirstHandler]:
        return [handler for handler in self.handlers if isinstance(handler, OnFirstHandler)]


@dataclass(frozen=True)
class FluxQuery:
    """A complete FluX query: the expression tree plus the DTD it targets."""

    body: FluxExpr
    dtd: Optional[DTD] = None

    def to_flux_syntax(self) -> str:
        """Render the query in the concrete FluX syntax of the paper."""
        lines: List[str] = []
        _render(self.body, lines, 0)
        return "\n".join(lines)

    def process_streams(self) -> List[FProcessStream]:
        """All ``process-stream`` nodes of the query, in document order."""
        return [node for node in walk_flux(self.body) if isinstance(node, FProcessStream)]


def walk_flux(expr: FluxExpr) -> Iterator[FluxExpr]:
    """Yield ``expr`` and every FluX descendant (pre-order)."""
    yield expr
    for child in expr.children():
        yield from walk_flux(child)


def flux_sequence(items: Iterable[FluxExpr]) -> FluxExpr:
    """Build a canonical FluX sequence (flattened, unwrapped when possible)."""
    flat: List[FluxExpr] = []
    for item in items:
        if isinstance(item, FSequence):
            flat.extend(item.items)
        else:
            flat.append(item)
    if len(flat) == 1:
        return flat[0]
    return FSequence(tuple(flat))


# ------------------------------------------------------------ pretty printer


def _indent(depth: int) -> str:
    return "  " * depth


def _render(expr: FluxExpr, lines: List[str], depth: int) -> None:
    pad = _indent(depth)
    if isinstance(expr, FSequence):
        for item in expr.items:
            _render(item, lines, depth)
        if not expr.items:
            lines.append(pad + "()")
        return
    if isinstance(expr, FText):
        lines.append(pad + f"text {expr.text!r}")
        return
    if isinstance(expr, FConstructor):
        attrs = "".join(f' {name}="{value}"' for name, value in expr.attributes)
        lines.append(pad + f"<{expr.name}{attrs}> {{")
        _render(expr.content, lines, depth + 1)
        lines.append(pad + f"}} </{expr.name}>")
        return
    if isinstance(expr, FCopyVar):
        lines.append(pad + f"{{ ${expr.var} }}")
        return
    if isinstance(expr, FBufferedExpr):
        lines.append(pad + f"{{ {expr.expr.to_xquery()} }}")
        return
    if isinstance(expr, FIf):
        lines.append(pad + f"if ({expr.condition.to_xquery()}) then {{")
        _render(expr.then_branch, lines, depth + 1)
        lines.append(pad + "} else {")
        _render(expr.else_branch, lines, depth + 1)
        lines.append(pad + "}")
        return
    if isinstance(expr, FProcessStream):
        lines.append(pad + f"process-stream ${expr.var}:")
        for index, handler in enumerate(expr.handlers):
            terminator = ";" if index < len(expr.handlers) - 1 else ""
            if isinstance(handler, OnHandler):
                lines.append(
                    _indent(depth + 1) + f"on {handler.label} as ${handler.var} return {{"
                )
            else:
                labels = ",".join(sorted(handler.past_labels)) if handler.past_labels else ""
                lines.append(_indent(depth + 1) + f"on-first past({labels}) return {{")
            _render(handler.body, lines, depth + 2)
            lines.append(_indent(depth + 1) + "}" + terminator)
        return
    raise TypeError(f"cannot render FluX node {expr!r}")  # pragma: no cover
