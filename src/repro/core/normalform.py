"""Rewriting XQuery into the optimizer's normal form.

"First, XQueries are rewritten into a normal form which allows us to use a
simple set of equivalences as rewrite rules in the subsequent optimization
steps." (Section 3.1 of the paper.)

The normal form established here:

1. **let-elimination** — ``let $x := e return b`` is replaced by ``b`` with
   ``$x`` substituted (capture-free; our fragment is side-effect free).  Lets
   whose value is not a variable or path and that are used as path roots are
   kept (they fall back to buffered evaluation downstream).
2. **where-elimination** — ``for $x in p where c return b`` becomes
   ``for $x in p return if (c) then b else ()`` so that all filtering is
   expressed through conditionals, which the algebraic rules understand.
3. **loop-path expansion** — ``for $b in $r/a/b return e`` becomes nested
   single-step loops ``for $g in $r/a return for $b in $g/b return e``; the
   scheduler only ever has to reason about loops over a single child label.
4. **output-path wrapping** — a bare path in output position (``{ $b/title }``)
   becomes an explicit loop ``for $f in $b/title return $f``, making every
   piece of output either a constructor, a literal, a variable copy, a
   conditional or a loop.
5. **sequence canonicalization** — nested/singleton sequences are flattened.

All rewrites are equivalence-preserving for the supported fragment.
"""

from __future__ import annotations

from typing import List, Optional

from repro.xquery.analysis import fresh_variable, substitute_variable
from repro.xquery.ast import (
    AndExpr,
    ChildStep,
    Comparison,
    ElementConstructor,
    EmptySequence,
    ForExpr,
    FunctionCall,
    IfExpr,
    LetExpr,
    Literal,
    NotExpr,
    OrExpr,
    PathExpr,
    SequenceExpr,
    VarRef,
    XQueryExpr,
    sequence_of,
)


def normalize(expr: XQueryExpr) -> XQueryExpr:
    """Rewrite ``expr`` into normal form (see module docstring)."""
    expr = _eliminate_lets(expr)
    expr = _normalize_expr(expr, output_position=True)
    return expr


# ------------------------------------------------------------------- let


def _eliminate_lets(expr: XQueryExpr) -> XQueryExpr:
    if isinstance(expr, LetExpr):
        value = _eliminate_lets(expr.value)
        body = _eliminate_lets(expr.body)
        try:
            return _eliminate_lets(substitute_variable(body, expr.var, value))
        except ValueError:
            # The let value is not a variable/path but is used as a path
            # root; keep the binding (it will be evaluated from buffers).
            return LetExpr(expr.var, value, body)
    if isinstance(expr, ForExpr):
        where = _eliminate_lets(expr.where) if expr.where is not None else None
        return ForExpr(
            expr.var, _eliminate_lets(expr.source), _eliminate_lets(expr.body), where
        )
    if isinstance(expr, SequenceExpr):
        return SequenceExpr(tuple(_eliminate_lets(item) for item in expr.items))
    if isinstance(expr, IfExpr):
        return IfExpr(
            _eliminate_lets(expr.condition),
            _eliminate_lets(expr.then_branch),
            _eliminate_lets(expr.else_branch),
        )
    if isinstance(expr, ElementConstructor):
        return ElementConstructor(expr.name, expr.attributes, _eliminate_lets(expr.content))
    if isinstance(expr, Comparison):
        return Comparison(expr.op, _eliminate_lets(expr.left), _eliminate_lets(expr.right))
    if isinstance(expr, AndExpr):
        return AndExpr(tuple(_eliminate_lets(operand) for operand in expr.operands))
    if isinstance(expr, OrExpr):
        return OrExpr(tuple(_eliminate_lets(operand) for operand in expr.operands))
    if isinstance(expr, NotExpr):
        return NotExpr(_eliminate_lets(expr.operand))
    if isinstance(expr, FunctionCall):
        return FunctionCall(
            expr.name, tuple(_eliminate_lets(argument) for argument in expr.arguments)
        )
    return expr


# ------------------------------------------------------------- main rewrite


def _normalize_expr(expr: XQueryExpr, output_position: bool) -> XQueryExpr:
    if isinstance(expr, SequenceExpr):
        return sequence_of(
            _normalize_expr(item, output_position) for item in expr.items
        )
    if isinstance(expr, ElementConstructor):
        return ElementConstructor(
            expr.name,
            expr.attributes,
            _normalize_expr(expr.content, output_position=True),
        )
    if isinstance(expr, ForExpr):
        return _normalize_for(expr)
    if isinstance(expr, LetExpr):
        return LetExpr(
            expr.var,
            _normalize_expr(expr.value, output_position=False),
            _normalize_expr(expr.body, output_position),
        )
    if isinstance(expr, IfExpr):
        return IfExpr(
            _normalize_expr(expr.condition, output_position=False),
            _normalize_expr(expr.then_branch, output_position),
            _normalize_expr(expr.else_branch, output_position),
        )
    if isinstance(expr, Comparison):
        return Comparison(
            expr.op,
            _normalize_expr(expr.left, output_position=False),
            _normalize_expr(expr.right, output_position=False),
        )
    if isinstance(expr, AndExpr):
        return AndExpr(
            tuple(_normalize_expr(operand, False) for operand in expr.operands)
        )
    if isinstance(expr, OrExpr):
        return OrExpr(
            tuple(_normalize_expr(operand, False) for operand in expr.operands)
        )
    if isinstance(expr, NotExpr):
        return NotExpr(_normalize_expr(expr.operand, False))
    if isinstance(expr, FunctionCall):
        return FunctionCall(
            expr.name,
            tuple(_normalize_expr(argument, False) for argument in expr.arguments),
        )
    if isinstance(expr, PathExpr) and output_position:
        # Rule 4: output paths become explicit loops.
        loop_var = fresh_variable("item")
        return ForExpr(loop_var, expr, VarRef(loop_var), None)
    return expr


def _normalize_for(expr: ForExpr) -> XQueryExpr:
    source = _normalize_expr(expr.source, output_position=False)
    body = _normalize_expr(expr.body, output_position=True)
    where = (
        _normalize_expr(expr.where, output_position=False)
        if expr.where is not None
        else None
    )
    # Rule 2: where-elimination.
    if where is not None:
        body = IfExpr(where, body, EmptySequence())
    # Rule 3: loop-path expansion over chains of plain child steps.
    if isinstance(source, PathExpr) and len(source.steps) > 1:
        steps = source.steps
        prefix_is_children = all(
            isinstance(step, ChildStep) and step.name != "*" for step in steps[:-1]
        )
        if prefix_is_children:
            loop: XQueryExpr = ForExpr(
                expr.var, PathExpr(fresh_var := fresh_variable("hop"), steps[-1:]), body, None
            )
            # Build the nesting inside-out over the remaining prefix steps.
            for index in range(len(steps) - 2, 0, -1):
                outer_var = fresh_variable("hop")
                loop = ForExpr(
                    fresh_var, PathExpr(outer_var, steps[index : index + 1]), loop, None
                )
                fresh_var = outer_var
            loop = ForExpr(fresh_var, PathExpr(source.var, steps[:1]), loop, None)
            return loop
    return ForExpr(expr.var, source, body, None)
