"""Exception hierarchy for the FluXQuery reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish parsing, schema, query, and runtime problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class XMLSyntaxError(ReproError):
    """Raised when the streaming XML parser encounters malformed input.

    Carries the character ``offset`` into the input at which the problem was
    detected, when known.
    """

    def __init__(self, message: str, offset: int = -1):
        if offset >= 0:
            message = f"{message} (at offset {offset})"
        super().__init__(message)
        self.offset = offset


class XMLValidationError(ReproError):
    """Raised when a document does not conform to the registered DTD."""


class DTDSyntaxError(ReproError):
    """Raised when a DTD declaration cannot be parsed."""


class XQuerySyntaxError(ReproError):
    """Raised when an XQuery string cannot be parsed.

    Carries the token ``position`` (character offset) when known.
    """

    def __init__(self, message: str, position: int = -1):
        if position >= 0:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class UnsupportedFeatureError(ReproError):
    """Raised for XQuery constructs outside the supported fragment."""


class QueryAnalysisError(ReproError):
    """Raised when static analysis of a query fails.

    Examples: references to unbound variables, paths rooted at unknown
    variables, or element names that do not occur in the DTD when the
    optimizer requires schema information.
    """


class UnsafeFluxQueryError(ReproError):
    """Raised when a FluX query is not safe for the given DTD.

    Safety is defined in Section 2 of the paper: a buffered sub-expression
    must not reference paths that may still arrive on the stream after its
    ``on-first`` handler has fired.
    """


class PlanError(ReproError):
    """Raised when a FluX query cannot be compiled into a physical plan."""


class EvaluationError(ReproError):
    """Raised when query evaluation fails at runtime."""


class PassInProgressError(ReproError):
    """Raised when a pass is opened while another pass is still in flight.

    A :class:`~repro.service.service.QueryService` serves one shared pass at
    a time (the pass owns the service's parser position and its sessions);
    finish or abort the active pass — ``service.active_pass`` names it —
    before opening the next one.
    """


class WorkerCrashError(ReproError):
    """Raised (as an error-tagged outcome) when a pool worker process dies.

    A :class:`~repro.service.process_pool.ProcessServicePool` that detects
    a worker process exiting while a document is in flight reports the
    document as an ``outcome == "error"``
    :class:`~repro.service.service.ServedDocument` carrying this error
    (with the process ``exitcode``), then respawns the worker slot.  The
    in-process pools never raise it: their workers cannot die without the
    whole interpreter dying.
    """

    def __init__(self, message: str, exitcode=None):
        if exitcode is not None:
            message = f"{message} (exit code {exitcode})"
        super().__init__(message)
        self.exitcode = exitcode


class BufferError_(ReproError):
    """Raised on invalid buffer-manager usage (e.g. reading a closed scope)."""


class WorkloadError(ReproError):
    """Raised when a workload generator is given invalid parameters."""
