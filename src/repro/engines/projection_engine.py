"""Projection baseline engine (Marian & Siméon, "Projecting XML Documents").

The paper positions FluXQuery against projection-based main-memory reduction
(reference [10]): instead of buffering the whole document, buffer only the
nodes on paths the query actually uses, then evaluate in memory.  FluXQuery
improves on this by additionally *not* buffering data that can be processed
on the fly; this engine exists to reproduce that comparison.

The engine works in two phases:

1. **Static projection-path extraction** (:func:`projection_paths`): every
   path in the query is resolved to a document-rooted path; loop sources
   contribute their *spine* (the elements must exist but their content is not
   needed), while paths whose nodes are returned, copied, or compared
   contribute the full subtree of their final step.
2. **Streaming projection**: the document is parsed as a stream and only the
   matching elements (spines plus kept subtrees, with their attributes and
   the text of kept subtrees) are materialized.  The projected tree is then
   handed to the reference tree evaluator.

Peak memory is the size of the projected tree, which for typical queries is a
query-dependent fraction of the document — more than FluX buffers, much less
than the DOM engine.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.engines.base import Engine, QueryResult
from repro.runtime.buffers import BufferManager
from repro.runtime.stats import RuntimeStats
from repro.xmlstream.events import EndElement, StartElement, Text
from repro.xmlstream.parser import parse_events
from repro.xmlstream.tree import XMLElement
from repro.xquery.analysis import DOCUMENT_TYPE
from repro.xquery.ast import (
    AttributeStep,
    ChildStep,
    Comparison,
    DescendantStep,
    DOCUMENT_VARIABLE,
    ElementConstructor,
    ForExpr,
    FunctionCall,
    IfExpr,
    LetExpr,
    PathExpr,
    SequenceExpr,
    TextStep,
    VarRef,
    XQueryExpr,
)
from repro.xquery.evaluator import TreeEvaluator, make_document_node
from repro.xquery.parser import parse_xquery
from repro.engines.dom_engine import _CountingEvents, _items_to_xml


class ProjectionNode:
    """A node of the projection tree (one per document-rooted path step)."""

    __slots__ = ("children", "keep_subtree")

    def __init__(self) -> None:
        self.children: Dict[str, "ProjectionNode"] = {}
        self.keep_subtree = False

    def child(self, label: str) -> "ProjectionNode":
        if label not in self.children:
            self.children[label] = ProjectionNode()
        return self.children[label]

    def paths(self, prefix: Tuple[str, ...] = ()) -> List[Tuple[Tuple[str, ...], bool]]:
        """All (path, keep_subtree) pairs of this subtree (for tests/docs)."""
        result: List[Tuple[Tuple[str, ...], bool]] = []
        if prefix:
            result.append((prefix, self.keep_subtree))
        for label, child in sorted(self.children.items()):
            result.extend(child.paths(prefix + (label,)))
        return result


def projection_paths(expr: XQueryExpr) -> ProjectionNode:
    """Extract the projection tree of a query.

    Variables are resolved to document-rooted paths; a variable bound through
    a construct the analysis cannot follow (descendant or wildcard steps,
    non-path let values) conservatively marks its binding node as a full
    subtree.
    """
    root = ProjectionNode()
    env: Dict[str, Optional[ProjectionNode]] = {DOCUMENT_VARIABLE: root}
    _collect_projection(expr, env, root, value_context=True)
    return root


def _resolve_path(
    path: PathExpr, env: Dict[str, Optional[ProjectionNode]]
) -> Tuple[Optional[ProjectionNode], str]:
    """Walk ``path`` through the projection tree.

    Returns ``(final node, kind)`` where ``kind`` says how the final step
    reached it: ``"node"`` (plain child steps), ``"attribute"`` (attributes
    are kept with every projected element, so no subtree is needed),
    ``"text"`` (the element's character data is needed) or ``"subtree"``
    (descendant/wildcard step — everything below is needed).  ``None`` means
    the variable itself is not trackable.
    """
    node = env.get(path.var)
    if node is None:
        return None, "node"
    for step in path.steps:
        if isinstance(step, ChildStep) and step.name != "*":
            node = node.child(step.name)
        elif isinstance(step, AttributeStep):
            return node, "attribute"
        elif isinstance(step, TextStep):
            return node, "text"
        else:
            # Descendant or wildcard step: keep everything below this node.
            node.keep_subtree = True
            return node, "subtree"
    return node, "node"


def _mark_value_path(path: PathExpr, env: Dict[str, Optional[ProjectionNode]]) -> None:
    node, kind = _resolve_path(path, env)
    if node is not None and kind != "attribute":
        node.keep_subtree = True


def _collect_projection(
    expr: XQueryExpr,
    env: Dict[str, Optional[ProjectionNode]],
    root: ProjectionNode,
    value_context: bool,
) -> None:
    if isinstance(expr, PathExpr):
        if value_context:
            _mark_value_path(expr, env)
        else:
            _resolve_path(expr, env)
        return
    if isinstance(expr, VarRef):
        if value_context:
            node = env.get(expr.name)
            if node is not None:
                node.keep_subtree = True
        return
    if isinstance(expr, ForExpr):
        source_node: Optional[ProjectionNode] = None
        if isinstance(expr.source, PathExpr):
            source_node, __ = _resolve_path(expr.source, env)
        else:
            _collect_projection(expr.source, env, root, value_context=True)
        inner_env = dict(env)
        inner_env[expr.var] = source_node
        if expr.where is not None:
            _collect_projection(expr.where, inner_env, root, value_context=True)
        _collect_projection(expr.body, inner_env, root, value_context)
        return
    if isinstance(expr, LetExpr):
        bound: Optional[ProjectionNode] = None
        if isinstance(expr.value, PathExpr):
            bound, __ = _resolve_path(expr.value, env)
        elif isinstance(expr.value, VarRef):
            bound = env.get(expr.value.name)
        else:
            _collect_projection(expr.value, env, root, value_context=True)
        inner_env = dict(env)
        inner_env[expr.var] = bound
        _collect_projection(expr.body, inner_env, root, value_context)
        return
    if isinstance(expr, (Comparison, FunctionCall)):
        for child in expr.children():
            _collect_projection(child, env, root, value_context=True)
        return
    if isinstance(expr, IfExpr):
        _collect_projection(expr.condition, env, root, value_context=True)
        _collect_projection(expr.then_branch, env, root, value_context)
        _collect_projection(expr.else_branch, env, root, value_context)
        return
    if isinstance(expr, (SequenceExpr, ElementConstructor)):
        for child in expr.children():
            _collect_projection(child, env, root, value_context)
        return
    for child in expr.children():
        _collect_projection(child, env, root, value_context=True)


class _StackEntry:
    __slots__ = ("element", "matched", "in_kept_subtree")

    def __init__(
        self,
        element: Optional[XMLElement],
        matched: List[ProjectionNode],
        in_kept_subtree: bool,
    ):
        self.element = element
        self.matched = matched
        self.in_kept_subtree = in_kept_subtree


class ProjectionEngine(Engine):
    """Projection-based baseline: buffer only statically projected paths."""

    name = "projection"

    def execute(self, query: str, document: Union[str, io.TextIOBase]) -> QueryResult:
        expr = parse_xquery(query)
        projection = projection_paths(expr)
        stats = RuntimeStats()
        buffers = BufferManager(stats)
        stats.start_timer()
        events = _CountingEvents(parse_events(document), stats)
        projected_root = self._project(events, projection)
        if projected_root is not None:
            buffers.account_tree(projected_root)
            document_node = make_document_node(projected_root)
        else:
            document_node = XMLElement("#document")
        evaluator = TreeEvaluator({DOCUMENT_VARIABLE: document_node})
        items = evaluator.evaluate(expr)
        output = _items_to_xml(items)
        stats.stop_timer()
        stats.output_bytes = len(output)
        return QueryResult(output=output, stats=stats, engine=self.name, query=query)

    # ------------------------------------------------------------ projection

    @staticmethod
    def _project(events, projection: ProjectionNode) -> Optional[XMLElement]:
        """Stream the document, materializing only projected nodes."""
        root_element: Optional[XMLElement] = None
        stack: List[_StackEntry] = []
        for event in events:
            if isinstance(event, StartElement):
                if not stack:
                    # The root element is always materialized (it is the
                    # spine of every document-rooted path).
                    root_node = projection.children.get(event.name)
                    matched = [root_node] if root_node is not None else []
                    element = XMLElement(event.name, event.attributes)
                    root_element = element
                    in_kept = projection.keep_subtree or (
                        root_node.keep_subtree if root_node is not None else False
                    )
                    stack.append(_StackEntry(element, matched, in_kept))
                    continue
                parent = stack[-1]
                matched = []
                keep_region = parent.in_kept_subtree
                for node in parent.matched:
                    child = node.children.get(event.name)
                    if child is not None:
                        matched.append(child)
                        if child.keep_subtree:
                            keep_region = True
                if matched or keep_region:
                    element = XMLElement(event.name, event.attributes)
                    if parent.element is not None:
                        parent.element.append(element)
                    stack.append(_StackEntry(element, matched, keep_region))
                else:
                    stack.append(_StackEntry(None, [], False))
            elif isinstance(event, EndElement):
                if stack:
                    stack.pop()
            elif isinstance(event, Text):
                if stack:
                    top = stack[-1]
                    if top.element is not None and top.in_kept_subtree:
                        top.element.append_text(event.text)
        return root_element
