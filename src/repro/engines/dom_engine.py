"""DOM baseline engine: materialize everything, then evaluate.

This engine models the behaviour of the "current main memory query engines"
the paper compares against: the whole input document is parsed into a tree
(so peak buffer memory equals the document size, independent of the query)
and the query is evaluated by the reference tree evaluator.
"""

from __future__ import annotations

import io
from typing import List, Union

from repro.engines.base import Engine, QueryResult
from repro.dtd.validator import StreamingValidator
from repro.runtime.buffers import BufferManager
from repro.runtime.stats import RuntimeStats
from repro.xmlstream.events import StartElement
from repro.xmlstream.parser import parse_events
from repro.xmlstream.serializer import escape_text, serialize_events
from repro.xmlstream.tree import build_tree, tree_to_events
from repro.xquery.ast import DOCUMENT_VARIABLE
from repro.xquery.evaluator import TreeEvaluator, make_document_node, string_value
from repro.xquery.parser import parse_xquery


class DomEngine(Engine):
    """Buffer-everything baseline (a conventional main-memory XQuery engine)."""

    name = "dom"

    def __init__(self, dtd=None, validate: bool = False):
        super().__init__(dtd)
        self.validate = validate

    def execute(self, query: str, document: Union[str, io.TextIOBase]) -> QueryResult:
        expr = parse_xquery(query)
        stats = RuntimeStats()
        buffers = BufferManager(stats)
        stats.start_timer()
        events = parse_events(document)
        if self.validate and self.dtd is not None:
            events = StreamingValidator(self.dtd).validate(events)
        counted = _CountingEvents(events, stats)
        root = build_tree(counted)
        buffers.account_tree(root)
        evaluator = TreeEvaluator({DOCUMENT_VARIABLE: make_document_node(root)})
        items = evaluator.evaluate(expr)
        output = _items_to_xml(items)
        stats.stop_timer()
        stats.output_bytes = len(output)
        return QueryResult(output=output, stats=stats, engine=self.name, query=query)


class _CountingEvents:
    """Event-stream wrapper that feeds the shared statistics counters."""

    def __init__(self, events, stats: RuntimeStats):
        self._events = events
        self._stats = stats

    def __iter__(self):
        for event in self._events:
            self._stats.events_processed += 1
            if isinstance(event, StartElement):
                self._stats.elements_parsed += 1
            yield event


def _items_to_xml(items: List[object]) -> str:
    """Serialize an evaluation result sequence the same way the streamed
    evaluator does (nodes serialized, atomics escaped and space-separated),
    so results are byte-comparable across engines."""
    parts: List[str] = []
    previous_atomic = False
    for item in items:
        if isinstance(item, bool):
            parts.append("true" if item else "false")
            previous_atomic = True
        elif isinstance(item, (str, int, float)):
            if previous_atomic:
                parts.append(" ")
            parts.append(escape_text(string_value(item)))
            previous_atomic = True
        else:
            parts.append(serialize_events(tree_to_events(item)))
            previous_atomic = False
    return "".join(parts)
