"""The FluXQuery engine: optimizer pipeline plus streamed runtime.

This engine is the end-to-end system of the paper (Figure 2): the XQuery is
compiled into an optimized FluX query, the FluX query into a physical plan
(with its buffer description forest and registered XSAX conditions), and the
plan is evaluated over the streaming input, producing the result as an output
XML stream and buffering only what the BDF requires.

Compiled queries support two execution styles:

* one-shot :meth:`CompiledFluxQuery.execute` pulls the whole document through
  the plan (the paper's model);
* :meth:`CompiledFluxQuery.start` opens a push-based
  :class:`FluxQuerySession` — ``feed(events)`` as they arrive, then
  ``finish()`` for the :class:`~repro.engines.base.QueryResult`.  This is
  what the multi-query service (``repro.service``) uses to run many plans
  over one shared scan.
"""

from __future__ import annotations

import io
from typing import Iterable, Optional, Union

from repro.core.optimizer import OptimizedQuery, OptimizerPipeline
from repro.dtd.schema import DTD
from repro.engines.base import Engine, QueryResult
from repro.obs import Observability
from repro.runtime.compiler import CompiledQueryPlan
from repro.runtime.evaluator import EvaluatorSession, StreamedEvaluator
from repro.runtime.plan_cache import PlanCache
from repro.runtime.plan import PhysicalPlan
from repro.xmlstream.events import Event
from repro.xmlstream.parser import parse_events


class FluxEngine(Engine):
    """Schema-driven streaming XQuery engine (the paper's system).

    Parameters
    ----------
    dtd:
        The schema of the input documents.  Without a DTD the engine still
        runs, but no order/cardinality constraints are available and most
        sub-expressions fall back to buffered evaluation at element ends.
    validate:
        Whether XSAX validates the input against the DTD while parsing.
    enable_loop_merging / enable_conditional_elimination /
    enable_path_relativization / use_order_constraints:
        Ablation switches forwarded to the optimizer pipeline (benchmarks T6, F7).
    plan_cache:
        An existing :class:`~repro.runtime.plan_cache.PlanCache` to compile
        through — the same cache type (and, if shared, the same instance)
        the multi-query service uses, so a query registered with a service
        and executed solo by an engine pays the optimizer once.  By default
        the engine owns a fresh bounded cache of ``cache_size`` plans.
    obs:
        Optional :class:`~repro.obs.Observability` hub; one-shot
        :meth:`CompiledFluxQuery.execute` calls fold their runtime stats
        into its metrics registry (``repro_engine_*`` series).  Push-based
        sessions are not instrumented here — the multi-query service that
        drives them accounts for passes itself.
    """

    name = "flux"

    def __init__(
        self,
        dtd: Union[DTD, str, None] = None,
        validate: bool = True,
        enable_loop_merging: bool = True,
        enable_conditional_elimination: bool = True,
        enable_path_relativization: bool = True,
        use_order_constraints: bool = True,
        plan_cache: Optional[PlanCache] = None,
        cache_size: int = 128,
        obs: Optional[Observability] = None,
    ):
        super().__init__(dtd)
        self.validate = validate
        self.obs = obs
        self.pipeline = OptimizerPipeline(
            self.dtd,
            enable_loop_merging=enable_loop_merging,
            enable_conditional_elimination=enable_conditional_elimination,
            enable_path_relativization=enable_path_relativization,
            use_order_constraints=use_order_constraints,
        )
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache(cache_size)

    # ------------------------------------------------------------ compile

    def compile(self, query: str) -> "CompiledFluxQuery":
        """Compile ``query`` through the plan cache.

        Repeated calls with the same text compile once (an LRU hit on the
        shared :class:`~repro.runtime.plan_cache.PlanCache`); the returned
        wrapper is a cheap per-call view over the cached
        :class:`~repro.runtime.compiler.CompiledQueryPlan`, so two calls
        return equal-but-distinct wrappers around one identical plan entry.
        Thread-safe: concurrent compilations of one query are single-flight.
        """
        entry, _ = self.plan_cache.get_or_compile(query, self.pipeline)
        return CompiledFluxQuery(self, entry)

    # ------------------------------------------------------------ execute

    def execute(self, query: str, document: Union[str, io.TextIOBase]) -> QueryResult:
        compiled = self.compile(query)
        return compiled.execute(document)


class CompiledFluxQuery:
    """A query compiled by the :class:`FluxEngine`, ready for execution."""

    def __init__(self, engine: FluxEngine, entry: CompiledQueryPlan):
        self.engine = engine
        self.entry = entry

    @property
    def query(self) -> str:
        return self.entry.source

    @property
    def optimized(self) -> OptimizedQuery:
        return self.entry.optimized

    @property
    def plan(self) -> PhysicalPlan:
        return self.entry.plan

    @property
    def flux_syntax(self) -> str:
        """The optimized query rendered in FluX syntax."""
        return self.entry.flux_syntax

    @property
    def buffer_description(self) -> str:
        """The buffer description forest of the compiled plan."""
        return self.entry.buffer_description

    def execute(self, document: Union[str, io.TextIOBase]) -> QueryResult:
        """Evaluate the compiled query over ``document`` (one-shot pull)."""
        evaluator = StreamedEvaluator(self.plan, self.engine.dtd, validate=self.engine.validate)
        events = parse_events(document)
        output, stats = evaluator.run_to_string(events)
        if self.engine.obs is not None:
            stats.observe(self.engine.obs, engine=self.engine.name)
        return QueryResult(output=output, stats=stats, engine=self.engine.name, query=self.query)

    def start(self, validate: Optional[bool] = None) -> "FluxQuerySession":
        """Open a push-based session: ``feed(events)``, then ``finish()``."""
        return FluxQuerySession(self, validate=validate)


class FluxQuerySession:
    """One push-based evaluation of a compiled FluX query.

    The session is started eagerly; callers push parser events with
    :meth:`feed` and collect the :class:`~repro.engines.base.QueryResult`
    with :meth:`finish`.  Output is byte-identical to the one-shot
    :meth:`CompiledFluxQuery.execute` over the same event stream.
    """

    def __init__(self, compiled: CompiledFluxQuery, validate: Optional[bool] = None):
        self.compiled = compiled
        if validate is None:
            validate = compiled.engine.validate
        self._session = EvaluatorSession(
            compiled.plan, compiled.engine.dtd, validate=validate
        )
        self._session.start()

    def feed(self, events: Iterable[Event]) -> None:
        """Push a batch of parser events into the evaluation."""
        self._session.feed(events)

    def finish(self) -> QueryResult:
        """Close the input and return the query result."""
        output, stats = self._session.finish()
        return QueryResult(
            output=output,
            stats=stats,
            engine=self.compiled.engine.name,
            query=self.compiled.query,
        )

    def abort(self) -> None:
        """Abandon the session, discarding any partial output."""
        self._session.abort()
