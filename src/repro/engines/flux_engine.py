"""The FluXQuery engine: optimizer pipeline plus streamed runtime.

This engine is the end-to-end system of the paper (Figure 2): the XQuery is
compiled into an optimized FluX query, the FluX query into a physical plan
(with its buffer description forest and registered XSAX conditions), and the
plan is evaluated over the streaming input, producing the result as an output
XML stream and buffering only what the BDF requires.
"""

from __future__ import annotations

import io
from typing import Optional, Union

from repro.core.optimizer import OptimizedQuery, OptimizerPipeline
from repro.dtd.schema import DTD
from repro.engines.base import Engine, QueryResult
from repro.runtime.compiler import QueryCompiler
from repro.runtime.evaluator import StreamedEvaluator
from repro.runtime.plan import PhysicalPlan
from repro.runtime.stats import RuntimeStats
from repro.xmlstream.parser import parse_events


class FluxEngine(Engine):
    """Schema-driven streaming XQuery engine (the paper's system).

    Parameters
    ----------
    dtd:
        The schema of the input documents.  Without a DTD the engine still
        runs, but no order/cardinality constraints are available and most
        sub-expressions fall back to buffered evaluation at element ends.
    validate:
        Whether XSAX validates the input against the DTD while parsing.
    enable_loop_merging / enable_conditional_elimination /
    enable_path_relativization / use_order_constraints:
        Ablation switches forwarded to the optimizer pipeline (benchmarks T6, F7).
    """

    name = "flux"

    def __init__(
        self,
        dtd: Union[DTD, str, None] = None,
        validate: bool = True,
        enable_loop_merging: bool = True,
        enable_conditional_elimination: bool = True,
        enable_path_relativization: bool = True,
        use_order_constraints: bool = True,
    ):
        super().__init__(dtd)
        self.validate = validate
        self.pipeline = OptimizerPipeline(
            self.dtd,
            enable_loop_merging=enable_loop_merging,
            enable_conditional_elimination=enable_conditional_elimination,
            enable_path_relativization=enable_path_relativization,
            use_order_constraints=use_order_constraints,
        )
        self._plan_cache: dict = {}

    # ------------------------------------------------------------ compile

    def compile(self, query: str) -> "CompiledFluxQuery":
        """Compile ``query`` once; the result can be executed repeatedly."""
        if query not in self._plan_cache:
            optimized = self.pipeline.compile(query)
            plan = QueryCompiler(self.dtd).compile(optimized.flux)
            self._plan_cache[query] = CompiledFluxQuery(self, query, optimized, plan)
        return self._plan_cache[query]

    # ------------------------------------------------------------ execute

    def execute(self, query: str, document: Union[str, io.TextIOBase]) -> QueryResult:
        compiled = self.compile(query)
        return compiled.execute(document)


class CompiledFluxQuery:
    """A query compiled by the :class:`FluxEngine`, ready for execution."""

    def __init__(self, engine: FluxEngine, query: str, optimized: OptimizedQuery, plan: PhysicalPlan):
        self.engine = engine
        self.query = query
        self.optimized = optimized
        self.plan = plan

    @property
    def flux_syntax(self) -> str:
        """The optimized query rendered in FluX syntax."""
        return self.optimized.flux.to_flux_syntax()

    @property
    def buffer_description(self) -> str:
        """The buffer description forest of the compiled plan."""
        return self.plan.bdf.describe()

    def execute(self, document: Union[str, io.TextIOBase]) -> QueryResult:
        """Evaluate the compiled query over ``document``."""
        evaluator = StreamedEvaluator(self.plan, self.engine.dtd, validate=self.engine.validate)
        events = parse_events(document)
        output, stats = evaluator.run_to_string(events)
        return QueryResult(output=output, stats=stats, engine=self.engine.name, query=self.query)
