"""Query engines.

Three engines share the :class:`~repro.engines.base.Engine` interface so the
benchmark harness can compare them on identical workloads:

* :class:`~repro.engines.flux_engine.FluxEngine` — the paper's system: the
  optimizer pipeline (normal form, algebraic optimization, scheduling into
  FluX) followed by the streamed runtime with BDF-driven buffering;
* :class:`~repro.engines.dom_engine.DomEngine` — the "contemporary XQuery
  engine" baseline: materialize the whole document, then evaluate;
* :class:`~repro.engines.projection_engine.ProjectionEngine` — the
  Marian & Siméon [10] style baseline: statically project the document down
  to the paths the query uses, materialize only those, then evaluate.

Every engine reports the same :class:`~repro.runtime.stats.RuntimeStats`, in
particular ``peak_buffer_bytes``, which is the memory number the paper's
evaluation is about.
"""

from repro.engines.base import Engine, QueryResult
from repro.engines.flux_engine import FluxEngine
from repro.engines.dom_engine import DomEngine
from repro.engines.projection_engine import ProjectionEngine, projection_paths

__all__ = [
    "Engine",
    "QueryResult",
    "FluxEngine",
    "DomEngine",
    "ProjectionEngine",
    "projection_paths",
]
