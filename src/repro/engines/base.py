"""Common engine interface and result object."""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.dtd.parser import parse_dtd
from repro.dtd.schema import DTD
from repro.runtime.stats import RuntimeStats


@dataclass
class QueryResult:
    """The outcome of evaluating one query over one document."""

    output: str
    stats: RuntimeStats
    engine: str
    query: str

    @property
    def peak_buffer_bytes(self) -> int:
        """Peak number of buffered bytes during evaluation."""
        return self.stats.peak_buffer_bytes

    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock evaluation time in seconds."""
        return self.stats.elapsed_seconds

    def summary(self) -> str:
        return f"[{self.engine}] {self.stats.summary()}"


class Engine:
    """Abstract base class of query engines.

    Subclasses implement :meth:`execute`, taking XQuery text and an XML
    document (text or file-like) and returning a :class:`QueryResult`.  The
    DTD may be given as a :class:`~repro.dtd.schema.DTD` or as DTD source
    text; engines that do not use schema information simply ignore it, so the
    harness can pass the same arguments to every engine.
    """

    #: Short identifier used in benchmark tables.
    name = "engine"

    def __init__(self, dtd: Union[DTD, str, None] = None):
        if isinstance(dtd, str):
            dtd = parse_dtd(dtd)
        self.dtd = dtd

    def execute(self, query: str, document: Union[str, io.TextIOBase]) -> QueryResult:
        """Evaluate ``query`` over ``document`` and return the result."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(dtd={'yes' if self.dtd else 'no'})"
