"""Query catalogue.

The demo paper's evaluation workload is drawn from the XML Query Use Cases
("XMP") and the companion paper's XMark-style experiments.  The queries below
are phrased inside the XQuery fragment FluXQuery supports (no aggregation),
each with machine-readable metadata so the benchmark harness can enumerate
them:

* the bibliography queries ``BIB-Q1`` … ``BIB-Q6`` exercise streaming copies,
  where-clauses on attributes and on child values, nested loops, existence
  tests, and the unsatisfiable author/editor conditional of Section 3.1;
* the auction queries ``AUC-A1`` … ``AUC-A4`` exercise the top-level order
  constraints of the auction DTD, per-auction buffering, and a value join
  across document sections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class QuerySpec:
    """One catalogued query with metadata used by benches and tests."""

    key: str
    title: str
    xquery: str
    workload: str  # "bib" or "auction"
    #: Expected scheduling behaviour under the *strong* DTD of the workload:
    #: "streaming" (no buffering of list data), "bounded" (buffers a bounded
    #: amount per outer element), or "join" (buffers whole document sections).
    expected_behaviour: str
    description: str = ""


# -------------------------------------------------------------- bibliography

_BIB_QUERIES: List[QuerySpec] = [
    QuerySpec(
        key="BIB-Q1",
        title="Books by Addison-Wesley after 1991 (XMP Q1)",
        workload="bib",
        expected_behaviour="bounded",
        description=(
            "Filter on publisher (a late child) and on the year attribute; the "
            "title must be buffered per book until the publisher is known."
        ),
        xquery="""
<bib>
{ for $b in $ROOT/bib/book
  where $b/publisher = "Addison-Wesley" and $b/@year > 1991
  return <book>{ $b/title }</book> }
</bib>
""",
    ),
    QuerySpec(
        key="BIB-Q2",
        title="Flat title/author pairs (XMP Q2)",
        workload="bib",
        expected_behaviour="bounded",
        description=(
            "One result element per (title, author) pair; the title of each "
            "book is buffered while its authors stream past."
        ),
        xquery="""
<results>
{ for $b in $ROOT/bib/book return
    for $a in $b/author return
      <result>{ $b/title } { $a }</result> }
</results>
""",
    ),
    QuerySpec(
        key="BIB-Q3",
        title="Titles and authors grouped per book (XMP Q3, the paper's example)",
        workload="bib",
        expected_behaviour="streaming",
        description=(
            "The running example of the paper: under the strong DTD both the "
            "titles and the authors can be copied to the output as they "
            "arrive; under the weak DTD the authors of one book are buffered."
        ),
        xquery="""
<results>
{ for $b in $ROOT/bib/book return
    <result> { $b/title } { $b/author } </result> }
</results>
""",
    ),
    QuerySpec(
        key="BIB-Q4",
        title="Title and price of every book",
        workload="bib",
        expected_behaviour="streaming",
        description=(
            "Copies two children that the strong DTD orders (title before "
            "price), skipping the authors in between — fully streamable."
        ),
        xquery="""
<pricelist>
{ for $b in $ROOT/bib/book return
    <entry> { $b/title } { $b/price } </entry> }
</pricelist>
""",
    ),
    QuerySpec(
        key="BIB-Q5",
        title="Books that have an editor",
        workload="bib",
        expected_behaviour="bounded",
        description=(
            "Existence test on editors plus output of title and editor "
            "affiliation; needs per-book buffering of the tested children."
        ),
        xquery="""
<edited>
{ for $b in $ROOT/bib/book
  where exists($b/editor)
  return <book>{ $b/title } { $b/editor }</book> }
</edited>
""",
    ),
    QuerySpec(
        key="BIB-Q6",
        title="Books where one person is both author and editor (unsatisfiable)",
        workload="bib",
        expected_behaviour="streaming",
        description=(
            "The co-occurrence example of Section 3.1: the strong DTD forbids "
            "a book having both authors and editors, so the optimizer removes "
            "the conditional and the query produces an empty list without "
            "touching any buffers."
        ),
        xquery="""
<suspicious>
{ for $b in $ROOT/bib/book return
    if ($b/author/last = "Goedel" and $b/editor/last = "Goedel")
    then <hit>{ $b/title }</hit>
    else () }
</suspicious>
""",
    ),
]


# ------------------------------------------------------------------ auction

_AUCTION_QUERIES: List[QuerySpec] = [
    QuerySpec(
        key="AUC-A1",
        title="Names of all items on offer",
        workload="auction",
        expected_behaviour="streaming",
        description="Copies one early child per item; fully streamable.",
        xquery="""
<items>
{ for $i in $ROOT/site/regions/item return <item>{ $i/name }</item> }
</items>
""",
    ),
    QuerySpec(
        key="AUC-A2",
        title="Initial and current price of every open auction",
        workload="auction",
        expected_behaviour="bounded",
        description=(
            "initial precedes the bidder list and current follows it; both "
            "can stream under the auction DTD's order constraints."
        ),
        xquery="""
<prices>
{ for $a in $ROOT/site/open_auctions/open_auction return
    <auction> { $a/initial } { $a/current } </auction> }
</prices>
""",
    ),
    QuerySpec(
        key="AUC-A3",
        title="Buyers joined with their closed auctions",
        workload="auction",
        expected_behaviour="join",
        description=(
            "A value join between people and closed auctions; both sections "
            "must be buffered (by every engine), the paper's fragment "
            "supports it through the BDF."
        ),
        xquery="""
<purchases>
{ for $p in $ROOT/site/people/person return
    for $c in $ROOT/site/closed_auctions/closed_auction
    where $c/buyer/@person = $p/@id
    return <purchase>{ $p/name } { $c/price }</purchase> }
</purchases>
""",
    ),
    QuerySpec(
        key="AUC-A4",
        title="Auctions that already have bidders",
        workload="auction",
        expected_behaviour="bounded",
        description=(
            "Existence test on bidders with output of the current price; "
            "requires bounded per-auction buffering."
        ),
        xquery="""
<active>
{ for $a in $ROOT/site/open_auctions/open_auction
  where exists($a/bidder)
  return <auction>{ $a/current }</auction> }
</active>
""",
    ),
]


BIB_QUERIES: Dict[str, QuerySpec] = {spec.key: spec for spec in _BIB_QUERIES}
AUCTION_QUERIES: Dict[str, QuerySpec] = {spec.key: spec for spec in _AUCTION_QUERIES}
ALL_QUERIES: Dict[str, QuerySpec] = {**BIB_QUERIES, **AUCTION_QUERIES}


def get_query(key: str) -> QuerySpec:
    """Look up a catalogued query by key (e.g. ``"BIB-Q3"``)."""
    if key not in ALL_QUERIES:
        raise KeyError(f"unknown query {key!r}; known: {sorted(ALL_QUERIES)}")
    return ALL_QUERIES[key]


def queries_for_workload(workload: str) -> List[QuerySpec]:
    """All catalogued queries for ``"bib"`` or ``"auction"``."""
    return [spec for spec in ALL_QUERIES.values() if spec.workload == workload]
