"""DTD catalogue used by the workloads and benchmarks.

Three schemas:

* :data:`BIB_DTD_STRONG` — the bibliography DTD of Figure 1 of the paper
  (extended with the sub-structure of the XML Query Use Cases ``bib.dtd`` so
  author/editor names have ``last``/``first`` children).  Its content model
  ``(title,(author+|editor+),publisher,price)`` provides the order
  constraints (``title`` before ``author`` before ``publisher`` before
  ``price``), the cardinality constraint ``publisher ∈ ||≤1 book``, and the
  co-occurrence constraint (no book has both authors and editors) that the
  optimizer exploits.
* :data:`BIB_DTD_WEAK` — the weak DTD of Section 2
  (``book (title|author)*`` extended with the other children) under which
  titles and authors may interleave, so Q3-style queries must buffer.
* :data:`AUCTION_DTD` — an XMark-style auction-site schema whose top-level
  order (regions, people, open_auctions, closed_auctions) gives the
  scheduler cross-section order constraints.
"""

from __future__ import annotations

from repro.dtd.parser import parse_dtd
from repro.dtd.schema import DTD

#: Figure 1 of the paper, with the XMP ``bib.dtd`` person sub-structure.
BIB_DTD_STRONG = """
<!ELEMENT bib (book)*>
<!ELEMENT book (title,(author+|editor+),publisher,price)>
<!ATTLIST book year CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (last,first)>
<!ELEMENT editor (last,first,affiliation)>
<!ELEMENT last (#PCDATA)>
<!ELEMENT first (#PCDATA)>
<!ELEMENT affiliation (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
"""

#: The weak DTD of Section 2 of the paper: no order among a book's children.
BIB_DTD_WEAK = """
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author|editor|publisher|price)*>
<!ATTLIST book year CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (last,first)>
<!ELEMENT editor (last,first,affiliation)>
<!ELEMENT last (#PCDATA)>
<!ELEMENT first (#PCDATA)>
<!ELEMENT affiliation (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
"""

#: XMark-style auction site (structurally reduced, constraint-preserving).
AUCTION_DTD = """
<!ELEMENT site (regions,people,open_auctions,closed_auctions)>
<!ELEMENT regions (item)*>
<!ELEMENT item (name,description,quantity,payment)>
<!ATTLIST item id CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT people (person)*>
<!ELEMENT person (name,emailaddress,phone?,creditcard?)>
<!ATTLIST person id CDATA #REQUIRED>
<!ELEMENT emailaddress (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT creditcard (#PCDATA)>
<!ELEMENT open_auctions (open_auction)*>
<!ELEMENT open_auction (initial,bidder*,current,itemref,seller)>
<!ATTLIST open_auction id CDATA #REQUIRED>
<!ELEMENT initial (#PCDATA)>
<!ELEMENT bidder (date,increase)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT increase (#PCDATA)>
<!ELEMENT current (#PCDATA)>
<!ELEMENT itemref EMPTY>
<!ATTLIST itemref item CDATA #REQUIRED>
<!ELEMENT seller EMPTY>
<!ATTLIST seller person CDATA #REQUIRED>
<!ELEMENT closed_auctions (closed_auction)*>
<!ELEMENT closed_auction (seller,buyer,itemref,price,date)>
<!ELEMENT buyer EMPTY>
<!ATTLIST buyer person CDATA #REQUIRED>
<!ELEMENT price (#PCDATA)>
"""


def bib_dtd_strong() -> DTD:
    """Parsed strong bibliography DTD (Figure 1)."""
    return parse_dtd(BIB_DTD_STRONG)


def bib_dtd_weak() -> DTD:
    """Parsed weak bibliography DTD (Section 2)."""
    return parse_dtd(BIB_DTD_WEAK)


def auction_dtd() -> DTD:
    """Parsed auction-site DTD."""
    return parse_dtd(AUCTION_DTD)
