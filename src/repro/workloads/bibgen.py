"""Deterministic bibliography document generator.

Generates XML documents that conform to either the strong bibliography DTD of
Figure 1 (``title`` before authors/editors before ``publisher`` before
``price``) or the weak DTD of Section 2 (children of a book may interleave in
any order), so the memory benefit of order constraints can be measured on
otherwise identical content.

Documents are reproducible for a given seed and parameter set; sizes scale
linearly with the number of books (roughly 330 bytes per book with default
parameters), and :meth:`BibliographyGenerator.books_for_target_size` converts
a target document size into a book count for the scaling experiments.
"""

from __future__ import annotations

import io
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import WorkloadError
from repro.xmlstream.serializer import escape_attribute, escape_text

_TITLE_WORDS = [
    "Advanced", "Data", "Streams", "Query", "Processing", "Semistructured",
    "Databases", "Principles", "Foundations", "XML", "Optimization", "Systems",
    "Transactions", "Information", "Retrieval", "Distributed", "Algorithms",
]
_LAST_NAMES = [
    "Stevens", "Abiteboul", "Buneman", "Suciu", "Koch", "Scherzinger",
    "Schweikardt", "Stegmaier", "Widom", "Ullman", "Garcia-Molina", "Vianu",
]
_FIRST_NAMES = [
    "Richard", "Serge", "Peter", "Dan", "Christoph", "Stefanie", "Nicole",
    "Bernhard", "Jennifer", "Jeffrey", "Hector", "Victor",
]
_PUBLISHERS = [
    "Addison-Wesley", "Morgan Kaufmann", "Springer", "Cambridge University Press",
    "O'Reilly", "MIT Press",
]
_AFFILIATIONS = ["TU Wien", "HU Berlin", "TU Muenchen", "Stanford", "U Penn", "INRIA"]


@dataclass
class BibliographyGenerator:
    """Configurable generator for bibliography documents.

    Parameters
    ----------
    num_books:
        Number of ``book`` elements.
    seed:
        Random seed; the same seed and parameters always produce the same
        document.
    max_authors:
        Maximum number of authors per book (at least 1 author or editor is
        always generated, as both DTDs require).
    editor_fraction:
        Fraction of books that have editors instead of authors.
    conform_to:
        ``"strong"`` produces children in the order of the Figure 1 DTD;
        ``"weak"`` interleaves titles/authors/publisher/price randomly (valid
        only for the weak DTD) so that order constraints genuinely do not
        hold on the data.
    include_doctype:
        Whether to emit an inline DOCTYPE carrying the matching DTD.
    """

    num_books: int = 100
    seed: int = 20040831
    max_authors: int = 4
    editor_fraction: float = 0.15
    conform_to: str = "strong"
    include_doctype: bool = False

    #: Approximate serialized size of one book with default parameters.
    APPROX_BYTES_PER_BOOK = 330

    def __post_init__(self) -> None:
        if self.num_books < 0:
            raise WorkloadError("num_books must be non-negative")
        if self.conform_to not in ("strong", "weak"):
            raise WorkloadError("conform_to must be 'strong' or 'weak'")
        if not 0 <= self.editor_fraction <= 1:
            raise WorkloadError("editor_fraction must be within [0, 1]")
        if self.max_authors < 1:
            raise WorkloadError("max_authors must be at least 1")

    # ------------------------------------------------------------ sizing

    @classmethod
    def books_for_target_size(cls, target_bytes: int) -> int:
        """Book count whose document is approximately ``target_bytes`` big."""
        return max(1, target_bytes // cls.APPROX_BYTES_PER_BOOK)

    # ---------------------------------------------------------- generation

    def generate(self) -> str:
        """Generate the document and return it as an XML string."""
        sink = io.StringIO()
        self.write(sink)
        return sink.getvalue()

    def write(self, sink: io.TextIOBase) -> int:
        """Write the document to ``sink``; returns the number of characters."""
        rng = random.Random(self.seed)
        written = 0

        def emit(text: str) -> None:
            nonlocal written
            sink.write(text)
            written += len(text)

        if self.include_doctype:
            from repro.workloads.dtds import BIB_DTD_STRONG, BIB_DTD_WEAK

            dtd_text = BIB_DTD_STRONG if self.conform_to == "strong" else BIB_DTD_WEAK
            emit(f"<!DOCTYPE bib [{dtd_text}]>\n")
        emit("<bib>")
        for index in range(self.num_books):
            emit(self._book(rng, index))
        emit("</bib>")
        return written

    # ------------------------------------------------------------ pieces

    def _book(self, rng: random.Random, index: int) -> str:
        year = rng.randint(1985, 2004)
        title = self._title(rng, index)
        persons = self._persons(rng)
        publisher = f"<publisher>{escape_text(rng.choice(_PUBLISHERS))}</publisher>"
        price = f"<price>{rng.randint(15, 120)}.{rng.randint(0, 99):02d}</price>"
        if self.conform_to == "strong":
            children: List[str] = [title, *persons, publisher, price]
        else:
            children = [title, *persons, publisher, price]
            rng.shuffle(children)
        body = "".join(children)
        return f'<book year="{year}">{body}</book>'

    def _title(self, rng: random.Random, index: int) -> str:
        words = rng.sample(_TITLE_WORDS, k=rng.randint(2, 4))
        text = " ".join(words) + f" (vol. {index + 1})"
        return f"<title>{escape_text(text)}</title>"

    def _persons(self, rng: random.Random) -> List[str]:
        count = rng.randint(1, self.max_authors)
        use_editors = rng.random() < self.editor_fraction
        persons: List[str] = []
        for _ in range(count):
            last = escape_text(rng.choice(_LAST_NAMES))
            first = escape_text(rng.choice(_FIRST_NAMES))
            if use_editors:
                affiliation = escape_text(rng.choice(_AFFILIATIONS))
                persons.append(
                    f"<editor><last>{last}</last><first>{first}</first>"
                    f"<affiliation>{affiliation}</affiliation></editor>"
                )
            else:
                persons.append(
                    f"<author><last>{last}</last><first>{first}</first></author>"
                )
        return persons


def generate_bibliography(
    num_books: int = 100,
    seed: int = 20040831,
    conform_to: str = "strong",
    max_authors: int = 4,
    editor_fraction: float = 0.15,
) -> str:
    """Convenience wrapper returning a bibliography document as a string."""
    generator = BibliographyGenerator(
        num_books=num_books,
        seed=seed,
        conform_to=conform_to,
        max_authors=max_authors,
        editor_fraction=editor_fraction,
    )
    return generator.generate()
