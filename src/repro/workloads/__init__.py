"""Workloads: DTD catalogue, document generators, and query catalogue.

The paper's evaluation (reported in the companion paper and summarized in the
demo paper) uses the XML Query Use Cases "XMP" bibliography documents and
XMark-style auction documents.  Neither generator can be redistributed here,
so this package provides deterministic, seeded in-repo equivalents:

* :mod:`repro.workloads.dtds` — the DTDs of Figures 1 (strong bibliography),
  the weak bibliography DTD of Section 2, and an auction-site DTD with the
  structural features the auction queries exercise;
* :mod:`repro.workloads.bibgen` — bibliography document generator
  (conforming to either bibliography DTD, scalable by book count or target
  size);
* :mod:`repro.workloads.xmark` — auction-site document generator;
* :mod:`repro.workloads.queries` — the query catalogue (XMP-style
  bibliography queries and auction queries) with machine-readable metadata
  used by the benchmark harness.
"""

from repro.workloads.dtds import (
    AUCTION_DTD,
    BIB_DTD_STRONG,
    BIB_DTD_WEAK,
    auction_dtd,
    bib_dtd_strong,
    bib_dtd_weak,
)
from repro.workloads.bibgen import BibliographyGenerator, generate_bibliography
from repro.workloads.xmark import AuctionGenerator, generate_auction_site
from repro.workloads.queries import (
    AUCTION_QUERIES,
    BIB_QUERIES,
    QuerySpec,
    get_query,
    queries_for_workload,
)

__all__ = [
    "BIB_DTD_STRONG",
    "BIB_DTD_WEAK",
    "AUCTION_DTD",
    "bib_dtd_strong",
    "bib_dtd_weak",
    "auction_dtd",
    "BibliographyGenerator",
    "generate_bibliography",
    "AuctionGenerator",
    "generate_auction_site",
    "QuerySpec",
    "BIB_QUERIES",
    "AUCTION_QUERIES",
    "get_query",
    "queries_for_workload",
]
