"""Deterministic auction-site (XMark-style) document generator.

The companion paper evaluates on XMark documents; the original XMark
generator (xmlgen) is a C program we cannot ship, so this module generates a
structurally reduced auction site with the same shape of data the auction
queries exercise: a catalogue of items, a set of registered people, open
auctions with bidder histories, and closed auctions referencing buyers and
items.  Document size scales linearly with the ``scale`` factor (scale 1.0 is
roughly 100 kB), mirroring how XMark's scale factor works.
"""

from __future__ import annotations

import io
import random
from dataclasses import dataclass
from typing import List

from repro.errors import WorkloadError
from repro.xmlstream.serializer import escape_text

_ITEM_NOUNS = [
    "gramophone", "typewriter", "atlas", "telescope", "camera", "sextant",
    "chronometer", "microscope", "tapestry", "manuscript", "globe", "compass",
]
_ADJECTIVES = [
    "antique", "restored", "rare", "mint", "engraved", "original",
    "hand-crafted", "signed", "early", "museum-grade",
]
_FIRST = ["Ada", "Alan", "Grace", "Edsger", "Barbara", "Donald", "John", "Edgar"]
_LAST = ["Lovelace", "Turing", "Hopper", "Dijkstra", "Liskov", "Knuth", "Backus", "Codd"]
_PAYMENT = ["Creditcard", "Money order", "Personal Check", "Cash"]


@dataclass
class AuctionGenerator:
    """Configurable generator for auction-site documents.

    ``scale`` multiplies the base counts (items, people, auctions); the
    individual counts can also be set explicitly.
    """

    scale: float = 1.0
    seed: int = 20040831
    items: int = 0
    people: int = 0
    open_auctions: int = 0
    closed_auctions: int = 0
    max_bidders: int = 5

    BASE_ITEMS = 120
    BASE_PEOPLE = 80
    BASE_OPEN = 60
    BASE_CLOSED = 40

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise WorkloadError("scale must be positive")
        if not self.items:
            self.items = max(1, int(self.BASE_ITEMS * self.scale))
        if not self.people:
            self.people = max(1, int(self.BASE_PEOPLE * self.scale))
        if not self.open_auctions:
            self.open_auctions = max(1, int(self.BASE_OPEN * self.scale))
        if not self.closed_auctions:
            self.closed_auctions = max(1, int(self.BASE_CLOSED * self.scale))

    # ---------------------------------------------------------- generation

    def generate(self) -> str:
        """Generate the document and return it as an XML string."""
        sink = io.StringIO()
        self.write(sink)
        return sink.getvalue()

    def write(self, sink: io.TextIOBase) -> int:
        """Write the document to ``sink``; returns the number of characters."""
        rng = random.Random(self.seed)
        written = 0

        def emit(text: str) -> None:
            nonlocal written
            sink.write(text)
            written += len(text)

        emit("<site>")
        emit("<regions>")
        for index in range(self.items):
            emit(self._item(rng, index))
        emit("</regions>")
        emit("<people>")
        for index in range(self.people):
            emit(self._person(rng, index))
        emit("</people>")
        emit("<open_auctions>")
        for index in range(self.open_auctions):
            emit(self._open_auction(rng, index))
        emit("</open_auctions>")
        emit("<closed_auctions>")
        for index in range(self.closed_auctions):
            emit(self._closed_auction(rng, index))
        emit("</closed_auctions>")
        emit("</site>")
        return written

    # -------------------------------------------------------------- pieces

    def _item(self, rng: random.Random, index: int) -> str:
        name = f"{rng.choice(_ADJECTIVES)} {rng.choice(_ITEM_NOUNS)}"
        description = (
            f"A {rng.choice(_ADJECTIVES)} {rng.choice(_ITEM_NOUNS)} in "
            f"{rng.choice(['excellent', 'good', 'fair'])} condition, lot {index}."
        )
        return (
            f'<item id="item{index}">'
            f"<name>{escape_text(name)}</name>"
            f"<description>{escape_text(description)}</description>"
            f"<quantity>{rng.randint(1, 10)}</quantity>"
            f"<payment>{escape_text(rng.choice(_PAYMENT))}</payment>"
            f"</item>"
        )

    def _person(self, rng: random.Random, index: int) -> str:
        first = rng.choice(_FIRST)
        last = rng.choice(_LAST)
        optional = ""
        if rng.random() < 0.6:
            optional += f"<phone>+43 1 {rng.randint(1000000, 9999999)}</phone>"
        if rng.random() < 0.4:
            optional += f"<creditcard>{rng.randint(1000, 9999)} {rng.randint(1000, 9999)}</creditcard>"
        return (
            f'<person id="person{index}">'
            f"<name>{escape_text(first + ' ' + last)}</name>"
            f"<emailaddress>{first.lower()}.{last.lower()}@example.org</emailaddress>"
            f"{optional}"
            f"</person>"
        )

    def _open_auction(self, rng: random.Random, index: int) -> str:
        initial = rng.randint(5, 200)
        bidders: List[str] = []
        current = initial
        for _ in range(rng.randint(0, self.max_bidders)):
            increase = rng.randint(1, 50)
            current += increase
            bidders.append(
                f"<bidder><date>2004-0{rng.randint(1, 9)}-{rng.randint(10, 28)}</date>"
                f"<increase>{increase}</increase></bidder>"
            )
        return (
            f'<open_auction id="auction{index}">'
            f"<initial>{initial}.00</initial>"
            f"{''.join(bidders)}"
            f"<current>{current}.00</current>"
            f'<itemref item="item{rng.randrange(self.items)}"/>'
            f'<seller person="person{rng.randrange(self.people)}"/>'
            f"</open_auction>"
        )

    def _closed_auction(self, rng: random.Random, index: int) -> str:
        return (
            f"<closed_auction>"
            f'<seller person="person{rng.randrange(self.people)}"/>'
            f'<buyer person="person{rng.randrange(self.people)}"/>'
            f'<itemref item="item{rng.randrange(self.items)}"/>'
            f"<price>{rng.randint(10, 500)}.00</price>"
            f"<date>2004-0{rng.randint(1, 9)}-{rng.randint(10, 28)}</date>"
            f"</closed_auction>"
        )


def generate_auction_site(scale: float = 1.0, seed: int = 20040831) -> str:
    """Convenience wrapper returning an auction document as a string."""
    return AuctionGenerator(scale=scale, seed=seed).generate()
