"""Validators for the observability output formats.

Shared by the golden tests and the CI smoke job (``scripts/ci_obs_smoke.py``)
so both check the *same* grammar: a tiny line-format validator for
Prometheus text exposition, and a JSON-lines checker for trace and log
files.  These are deliberately strict about structure and silent about
values — they answer "would a scraper/jq parse this?", not "are the
numbers right?".

Stdlib only; no ``repro`` imports.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List, Optional, Sequence

_HELP_RE = re.compile(r"^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$")
_TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$")
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"                 # metric name
    r"(?:\{((?:[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\",?)*)\})?"  # labels
    r" (-?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|\+Inf|-Inf|NaN))"         # value
    r"(?: -?\d+)?$"                                 # optional timestamp
)


def validate_prometheus_text(text: str) -> List[str]:
    """Validate Prometheus text exposition; returns a list of problems.

    Empty list means valid.  Checks line grammar, that every sample's
    name matches a declared ``# TYPE`` family (histogram samples may use
    the ``_bucket``/``_sum``/``_count`` suffixes), and that histogram
    bucket counts are cumulative and agree with ``_count``.
    """
    problems: List[str] = []
    declared: Dict[str, str] = {}
    bucket_runs: Dict[str, List[float]] = {}
    counts: Dict[str, float] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            if not _HELP_RE.match(line):
                problems.append(f"line {lineno}: malformed HELP: {line!r}")
            continue
        if line.startswith("# TYPE "):
            match = _TYPE_RE.match(line)
            if not match:
                problems.append(f"line {lineno}: malformed TYPE: {line!r}")
            else:
                declared[match.group(1)] = match.group(2)
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name, labels, value = match.group(1), match.group(2), match.group(3)
        family = _family_of(name, declared)
        if family is None:
            problems.append(f"line {lineno}: sample {name!r} has no # TYPE declaration")
            continue
        if declared[family] == "histogram":
            series = f"{family}|{_strip_le(labels or '')}"
            if name.endswith("_bucket"):
                bucket_runs.setdefault(series, []).append(float(value.replace("+Inf", "inf")))
            elif name.endswith("_count"):
                counts[series] = float(value)
    for series, run in bucket_runs.items():
        if any(b > a for b, a in zip(run, run[1:])):
            problems.append(f"histogram {series}: bucket counts not cumulative: {run}")
        if series in counts and run and run[-1] != counts[series]:
            problems.append(
                f"histogram {series}: +Inf bucket {run[-1]} != _count {counts[series]}"
            )
    return problems


def _family_of(sample_name: str, declared: Dict[str, str]) -> Optional[str]:
    if sample_name in declared:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if declared.get(base) == "histogram":
                return base
    return None


def _strip_le(labels: str) -> str:
    """Label string with any ``le="..."`` pair removed, for series keying."""
    return ",".join(
        pair for pair in labels.split(",") if pair and not pair.startswith("le=")
    )


def validate_json_lines(
    lines: Iterable[str], required_keys: Sequence[str] = ()
) -> List[str]:
    """Validate JSON-lines content (trace or log files); returns problems.

    Each non-blank line must parse as a JSON object carrying every key in
    ``required_keys``.  Use ``("trace_id", "span_id", "name", "start",
    "duration_s")`` for traces, ``("ts", "event")`` for logs.
    """
    problems: List[str] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: not JSON: {exc}")
            continue
        if not isinstance(record, dict):
            problems.append(f"line {lineno}: not a JSON object")
            continue
        missing = [key for key in required_keys if key not in record]
        if missing:
            problems.append(f"line {lineno}: missing keys {missing}")
    return problems


#: Required keys for span JSON-lines (``--trace-out``).
TRACE_KEYS = ("trace_id", "span_id", "name", "start", "duration_s")

#: Required keys for log JSON-lines (``--log-json``).
LOG_KEYS = ("ts", "event")
