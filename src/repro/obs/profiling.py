"""Off-by-default ``cProfile`` hooks with per-stage attribution.

ROADMAP item 2 says "profile one million-event pass, then attack the top
of the profile"; this module is the measurement that starts from.  A
:class:`StageProfiler` wraps a whole pass (profiling *around* the code,
never *in* it — `SharedProjectionIndex.route()` and the evaluator loop
stay untouched), then attributes the flat ``pstats`` rows to pipeline
stages by the module path of each function:

=========  =====================================================
stage      module paths
=========  =====================================================
parse      ``xmlstream/parser``
route      ``service/dispatcher`` (the routing stack machine)
validate   ``dtd/validator``
evaluate   ``runtime/evaluator``, ``xquery/evaluator``,
           ``runtime/buffers``, ``runtime/conditions``
emit       ``xmlstream/serializer``
other      everything else (profiler overhead, stdlib, glue)
=========  =====================================================

The report is the "per-stage top-of-profile": for each stage, total
cumulative time and the hottest functions inside it.  Enabled only by
``multi --profile``; when off, nothing here is imported into any hot
path.  Stdlib only; no ``repro`` imports.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Dict, List, Tuple

#: Stage attribution by substring of the profiled function's file path.
#: First match wins; order puts the most specific paths first.
STAGE_PATHS: Tuple[Tuple[str, str], ...] = (
    ("xmlstream/parser", "parse"),
    ("service/dispatcher", "route"),
    ("dtd/validator", "validate"),
    ("runtime/evaluator", "evaluate"),
    ("xquery/evaluator", "evaluate"),
    ("runtime/buffers", "evaluate"),
    ("runtime/conditions", "evaluate"),
    ("xmlstream/serializer", "emit"),
)

STAGE_ORDER = ("parse", "route", "validate", "evaluate", "emit", "other")


def _stage_of(filename: str) -> str:
    normalized = filename.replace("\\", "/")
    for fragment, stage in STAGE_PATHS:
        if fragment in normalized:
            return stage
    return "other"


class StageProfiler:
    """A reusable ``cProfile`` wrapper accumulating across passes.

    Usage: ``with profiler: pass_work()`` around each pass (the context
    manager enables/disables the one shared profiler, so stats accumulate
    over a whole ``multi`` run), then :meth:`report` once at the end.
    Not re-entrant — one profiler, one thread at a time, which matches
    the inline execution mode ``--profile`` is most useful with.
    """

    def __init__(self, top: int = 5):
        self._profile = cProfile.Profile()
        self.top = top
        self.passes = 0

    def __enter__(self) -> "StageProfiler":
        self._profile.enable()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self._profile.disable()
        self.passes += 1

    # -------------------------------------------------------------- report

    def stage_table(self) -> Dict[str, dict]:
        """Per-stage totals and hottest functions from the flat profile."""
        stats = pstats.Stats(self._profile, stream=io.StringIO())
        stages: Dict[str, dict] = {
            stage: {"cumulative_s": 0.0, "internal_s": 0.0, "calls": 0, "top": []}
            for stage in STAGE_ORDER
        }
        rows: Dict[str, List[Tuple[float, float, int, str]]] = {s: [] for s in STAGE_ORDER}
        for (filename, lineno, funcname), (cc, nc, tt, ct, _callers) in stats.stats.items():
            stage = _stage_of(filename)
            entry = stages[stage]
            entry["internal_s"] += tt
            entry["calls"] += nc
            short = filename.replace("\\", "/").rsplit("src/", 1)[-1]
            rows[stage].append((tt, ct, nc, f"{short}:{lineno}({funcname})"))
        for stage in STAGE_ORDER:
            ranked = sorted(rows[stage], reverse=True)[: self.top]
            stages[stage]["top"] = [
                {"function": name, "internal_s": tt, "cumulative_s": ct, "calls": nc}
                for tt, ct, nc, name in ranked
            ]
            # Stage cumulative time = sum of internal time of its functions;
            # summing ct would double-count callees within the stage.
            stages[stage]["cumulative_s"] = stages[stage].pop("internal_s")
        return stages

    def report(self) -> str:
        """Human-readable per-stage top-of-profile text."""
        table = self.stage_table()
        total = sum(entry["cumulative_s"] for entry in table.values()) or 1.0
        lines = [f"per-stage profile ({self.passes} pass(es) profiled)"]
        for stage in STAGE_ORDER:
            entry = table[stage]
            if entry["calls"] == 0:
                continue
            share = 100.0 * entry["cumulative_s"] / total
            lines.append(
                f"  {stage:<9} {entry['cumulative_s']:8.4f}s  {share:5.1f}%  "
                f"{entry['calls']} calls"
            )
            for row in entry["top"]:
                lines.append(
                    f"    {row['internal_s']:8.4f}s  {row['function']}"
                )
        return "\n".join(lines)
