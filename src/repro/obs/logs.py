"""Structured JSON-lines logging for service and pool lifecycle events.

One event, one JSON line: ``{"ts", "event", ...fields}``.  The event
vocabulary mirrors the lifecycle state machines in
``docs/ARCHITECTURE.md``: ``service.register`` / ``service.unregister``,
``pass.start`` / ``pass.finish`` / ``pass.abort``, ``pool.fault``
(fault isolation of one document's failure), ``pool.respawn``
(crash-respawn of a worker process), ``pool.ship`` (plan shipping), and
``cache.evict``.  Nothing in ``src/`` logged anything before this
module; it stays deliberately tiny — no levels, no formatters, no global
state — because the consumer is ``jq``, not a human tailing text.

Stdlib only; no ``repro`` imports; safe to call from any thread.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional


class JsonLogger:
    """Thread-safe JSON-lines event logger writing to a file or stream."""

    def __init__(self, path_or_file):
        if hasattr(path_or_file, "write"):
            self._file = path_or_file
            self._owns = False
        else:
            self._file = open(path_or_file, "a", encoding="utf-8")
            self._owns = True
        self._lock = threading.Lock()

    def event(self, name: str, **fields) -> Dict:
        """Write one event line; returns the dict that was written."""
        record = {"ts": time.time(), "event": name}
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self._file.write(line + "\n")
            self._file.flush()
        return record

    def close(self) -> None:
        with self._lock:
            if self._owns:
                self._file.close()


class MemoryLogger(JsonLogger):
    """Collects event dicts in memory instead of writing — for tests."""

    def __init__(self):  # pylint: disable=super-init-not-called
        self._lock = threading.Lock()
        self.events: List[Dict] = []

    def event(self, name: str, **fields) -> Dict:
        record = {"ts": time.time(), "event": name}
        record.update(fields)
        with self._lock:
            self.events.append(record)
        return record

    def close(self) -> None:
        pass

    def find(self, name: str) -> List[Dict]:
        with self._lock:
            return [e for e in self.events if e["event"] == name]
