"""Thread-safe labeled metrics: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` describes the whole system — pass counters,
service lifetime totals, pool shard accounting, plan-cache hit rates, and
stage latency distributions — in one snapshot, exportable two ways:

* :meth:`MetricsRegistry.snapshot` — a plain JSON-able dict (what
  ``multi --metrics-out`` writes and ``repro stats`` pretty-prints);
* :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition
  format (the ``/metrics`` wire format ROADMAP item 1's endpoint will
  serve; validated line-by-line by :mod:`repro.obs.validate`).

Design constraints, in order:

1. **The disabled path costs nothing.**  Nothing in this module is on any
   hot loop; instrumented code holds a registry reference and calls
   ``inc``/``observe`` at *pass* granularity (or, on the enabled timed
   path, at chunk granularity).  The per-event hot loop
   (:meth:`~repro.service.dispatcher.SharedProjectionIndex.route`) is
   never touched when observability is off.
2. **No torn reads.**  Every mutation and every snapshot holds the
   registry's one lock.  Mutations are tiny (a dict lookup and an add),
   so one lock beats per-metric locks: a snapshot sees a consistent
   cut of *all* metrics, which per-metric locking cannot give.
3. **Histograms are fixed-bucket.**  Observations land in precomputed
   latency buckets (no per-observation allocation beyond the first for a
   label set); percentiles (p50/p95/p99) are estimated at snapshot time
   by linear interpolation inside the covering bucket — the standard
   Prometheus-side estimate, computed here so a snapshot is
   self-contained.

Only the standard library is used, and nothing in ``repro.obs`` imports
other ``repro`` packages: the observability layer sits *below* runtime
and service in the dependency order, so any layer may record into it.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds) for stage/pass histograms: 100 µs up
#: to 30 s, roughly ×2.5 per step — wide enough for a whole XMark pass,
#: fine enough to separate route from evaluate on small documents.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Valid Prometheus metric and label names.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelTuple = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelTuple:
    """A hashable, sorted form of a label set (values coerced to str)."""
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: LabelTuple, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    rendered = ",".join(f'{key}="{_escape_label_value(value)}"' for key, value in pairs)
    return "{" + rendered + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class _Metric:
    """Base of one named metric family (all label sets of one name)."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.Lock):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help_text
        self._lock = lock  # the owning registry's lock, shared on purpose


class Counter(_Metric):
    """A monotonically increasing sum, per label set."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, lock: threading.Lock):
        super().__init__(name, help_text, lock)
        self._values: Dict[LabelTuple, float] = {}

    def inc(self, amount: float = 1, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0)

    def _snapshot_values_locked(self) -> List[dict]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]

    def _exposition_locked(self) -> Iterable[str]:
        for key, value in sorted(self._values.items()):
            yield f"{self.name}{_format_labels(key)} {_format_value(value)}"


class Gauge(_Metric):
    """A value that may go up and down (set, or inc/dec), per label set."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, lock: threading.Lock):
        super().__init__(name, help_text, lock)
        self._values: Dict[LabelTuple, float] = {}

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[_label_key(labels)] = value

    def inc(self, amount: float = 1, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0)

    _snapshot_values_locked = Counter._snapshot_values_locked
    _exposition_locked = Counter._exposition_locked


class _HistogramSeries:
    """Bucket counts, sum, and count of one histogram label set."""

    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, bucket_count: int):
        self.bucket_counts = [0] * bucket_count
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket distribution with snapshot-time percentile estimates.

    Buckets are cumulative upper bounds (``le``), Prometheus-style, with an
    implicit ``+Inf`` bucket; :meth:`percentile` interpolates linearly
    inside the covering bucket (observations above the last finite bound
    report that bound — the estimate never invents a value the buckets
    cannot support).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help_text, lock)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self._series: Dict[LabelTuple, _HistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.bounds) + 1)
            # Linear scan: bounds are few and the common case (latencies)
            # lands in the first third; bisect would not beat it.
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    series.bucket_counts[i] += 1
                    break
            else:
                series.bucket_counts[-1] += 1
            series.total += value
            series.count += 1

    # ---------------------------------------------------------- estimates

    def _percentile_locked(self, series: _HistogramSeries, quantile: float) -> float:
        if series.count == 0:
            return 0.0
        rank = quantile * series.count
        cumulative = 0
        for i, bucket_count in enumerate(series.bucket_counts):
            if bucket_count == 0:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                if i >= len(self.bounds):  # +Inf bucket: clamp to last bound
                    return self.bounds[-1]
                lower = 0.0 if i == 0 else self.bounds[i - 1]
                upper = self.bounds[i]
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * fraction
        return self.bounds[-1]  # pragma: no cover - unreachable

    def percentile(self, quantile: float, **labels: str) -> float:
        """The estimated ``quantile`` (0..1) for one label set."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None:
                return 0.0
            return self._percentile_locked(series, quantile)

    def count(self, **labels: str) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.count if series is not None else 0

    def sum(self, **labels: str) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.total if series is not None else 0.0

    def _snapshot_values_locked(self) -> List[dict]:
        values = []
        for key, series in sorted(self._series.items()):
            cumulative = 0
            buckets = []
            for i, bound in enumerate(self.bounds):
                cumulative += series.bucket_counts[i]
                buckets.append({"le": bound, "count": cumulative})
            buckets.append({"le": "+Inf", "count": series.count})
            values.append(
                {
                    "labels": dict(key),
                    "count": series.count,
                    "sum": series.total,
                    "buckets": buckets,
                    "p50": self._percentile_locked(series, 0.50),
                    "p95": self._percentile_locked(series, 0.95),
                    "p99": self._percentile_locked(series, 0.99),
                }
            )
        return values

    def _exposition_locked(self) -> Iterable[str]:
        for key, series in sorted(self._series.items()):
            cumulative = 0
            for i, bound in enumerate(self.bounds):
                cumulative += series.bucket_counts[i]
                labels = _format_labels(key, ("le", _format_value(bound)))
                yield f"{self.name}_bucket{labels} {cumulative}"
            labels = _format_labels(key, ("le", "+Inf"))
            yield f"{self.name}_bucket{labels} {series.count}"
            yield f"{self.name}_sum{_format_labels(key)} {_format_value(series.total)}"
            yield f"{self.name}_count{_format_labels(key)} {series.count}"


class MetricsRegistry:
    """The one place every layer's counters, gauges, and histograms live.

    ``counter`` / ``gauge`` / ``histogram`` create-or-get a metric family
    by name (re-declaring with a different kind raises — one name, one
    meaning); the returned objects are cheap handles safe to cache and to
    use from any thread.  ``add_collector`` registers a callback run at
    the top of every :meth:`snapshot` / :meth:`to_prometheus`, which is
    how *pull*-style sources (live :class:`ServiceMetrics`, pool
    aggregates, :class:`~repro.runtime.plan_cache.CacheStats`) fold into
    the same snapshot as the *push*-style stage observations.

    Thread-safety: one registry-wide lock guards every value mutation and
    the whole snapshot assembly, so concurrent writers can never tear a
    read (tested with N writer threads against a snapshotting reader).
    Collectors run *outside* the lock (they typically call back into
    ``set``), in registration order.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: "Dict[str, _Metric]" = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []
        self._collector_lock = threading.Lock()

    # ------------------------------------------------------------ families

    def _get_or_create(self, cls, name: str, help_text: str, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if not isinstance(metric, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {metric.kind}, "
                        f"not {cls.kind}"
                    )
                return metric
            metric = cls(name, help_text, self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help_text, buckets=buckets)

    # ----------------------------------------------------------- collectors

    def add_collector(self, collect: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback refreshing pull-style values at snapshot time."""
        with self._collector_lock:
            self._collectors.append(collect)

    def _run_collectors(self) -> None:
        with self._collector_lock:
            collectors = list(self._collectors)
        for collect in collectors:
            collect(self)

    def set_from_dict(self, prefix: str, mapping: Dict, **labels: str) -> None:
        """Set one gauge per numeric scalar in ``mapping``, as ``prefix_key``.

        The folding bridge for the pre-existing stats dataclasses: a
        collector calls this with ``ServiceMetrics.as_dict()`` /
        ``PoolMetrics.as_dict()`` / ``CacheStats.as_dict()`` output, so
        the whole system's counters land in one snapshot without the
        dataclasses knowing about the registry.  Nested dicts/lists
        (per-query, per-worker breakdowns) are skipped — they stay in the
        source dataclass reports.
        """
        for key, value in mapping.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self.gauge(f"{prefix}_{key}").set(value, **labels)

    # ------------------------------------------------------------- exports

    def snapshot(self) -> Dict[str, dict]:
        """A JSON-able dict of every metric family and its label sets."""
        self._run_collectors()
        with self._lock:
            return {
                name: {
                    "kind": metric.kind,
                    "help": metric.help,
                    "values": metric._snapshot_values_locked(),
                }
                for name, metric in sorted(self._metrics.items())
            }

    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        self._run_collectors()
        lines: List[str] = []
        with self._lock:
            for name, metric in sorted(self._metrics.items()):
                if metric.help:
                    lines.append(f"# HELP {name} {metric.help}")
                lines.append(f"# TYPE {name} {metric.kind}")
                lines.extend(metric._exposition_locked())
        return "\n".join(lines) + "\n"


def format_snapshot(snapshot: Dict[str, dict]) -> str:
    """Human-readable rendering of a :meth:`MetricsRegistry.snapshot` dict.

    This is what ``repro stats`` prints for a ``--metrics-out`` file.  It
    reads the snapshot *shape*, not live metric objects, so it works on a
    JSON round-trip; unknown kinds render like counters, keeping older
    builds able to print newer snapshots.
    """
    lines: List[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        kind = family.get("kind", "untyped")
        header = f"{name} ({kind})"
        if family.get("help"):
            header += f" -- {family['help']}"
        lines.append(header)
        values = family.get("values") or []
        if not values:
            lines.append("  (no samples)")
        for sample in values:
            labels = sample.get("labels") or {}
            label_text = (
                "{" + ", ".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if labels
                else "(no labels)"
            )
            if kind == "histogram":
                lines.append(
                    f"  {label_text}  count={sample.get('count', 0)}"
                    f"  sum={sample.get('sum', 0.0):.6f}"
                    f"  p50={sample.get('p50', 0.0):.6f}"
                    f"  p95={sample.get('p95', 0.0):.6f}"
                    f"  p99={sample.get('p99', 0.0):.6f}"
                )
            else:
                lines.append(f"  {label_text}  {_format_value(sample.get('value', 0))}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
