"""Unified observability: metrics registry, stage tracing, structured logs,
and profiling hooks — one optional substrate for every layer.

The :class:`Observability` hub bundles up to four independent components
(metrics :class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.trace.Tracer`, a :class:`~repro.obs.logs.JsonLogger`,
a :class:`~repro.obs.profiling.StageProfiler`), each of which may be
``None``.  Instrumented code takes ``obs=None`` and checks *once per
pass / document* which components are live — never per event — so the
default path is the pre-observability code, byte for byte.

This package is stdlib-only and imports nothing from the rest of
``repro``: it sits below ``runtime`` and ``service`` in the layering, so
any layer can record into it without cycles.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.logs import JsonLogger, MemoryLogger
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_snapshot,
)
from repro.obs.profiling import StageProfiler
from repro.obs.trace import (
    JsonLinesSink,
    MemorySink,
    Span,
    Tracer,
    new_span_id,
    new_trace_id,
)

__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "format_snapshot",
    "Tracer",
    "Span",
    "JsonLinesSink",
    "MemorySink",
    "new_trace_id",
    "new_span_id",
    "JsonLogger",
    "MemoryLogger",
    "StageProfiler",
]


class Observability:
    """The bundle handed to services and pools; every part optional.

    ``Observability()`` with no arguments is a fully inert hub — useful
    as an explicit "off" — but the conventional off-switch is passing
    ``obs=None``, which keeps instrumented call sites on their original
    code path entirely.

    Helpers (:meth:`log`, :meth:`observe_stage`) are no-op-safe: callers
    that already hold a non-``None`` hub can use them without checking
    which components are enabled.
    """

    __slots__ = ("metrics", "tracer", "logger", "profiler")

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        logger: Optional[JsonLogger] = None,
        profiler: Optional[StageProfiler] = None,
    ):
        self.metrics = metrics
        self.tracer = tracer
        self.logger = logger
        self.profiler = profiler

    @property
    def timing_enabled(self) -> bool:
        """Whether per-stage timing must be collected during a pass."""
        return self.metrics is not None or self.tracer is not None

    def log(self, event: str, **fields) -> None:
        if self.logger is not None:
            self.logger.event(event, **fields)

    def observe_stage(self, stage: str, duration_s: float, **labels) -> None:
        """Record one stage duration into the latency histogram."""
        if self.metrics is not None:
            self.metrics.histogram(
                "repro_stage_duration_seconds",
                "Per-pass duration of each pipeline stage, in seconds.",
            ).observe(duration_s, stage=stage, **labels)

    def record_span(self, name: str, trace_id: Optional[str], duration_s: float,
                    parent_id: Optional[str] = None, **attrs) -> None:
        if self.tracer is not None and trace_id is not None:
            self.tracer.record(name, trace_id, duration_s, parent_id=parent_id, **attrs)

    def for_pool_worker(self) -> "Observability":
        """The hub a pool hands its worker services.

        Shares the metrics registry and tracer (stage histograms and pass
        spans must come from where passes actually run) but drops the
        logger — lifecycle events are the pool's to log once, not once
        per mirrored worker — and the profiler, which wraps one pass at a
        time and cannot be enabled concurrently from worker threads.
        """
        return Observability(metrics=self.metrics, tracer=self.tracer)

    def close(self) -> None:
        if self.tracer is not None:
            self.tracer.close()
        if self.logger is not None:
            self.logger.close()
