"""Lightweight stage spans with cross-process trace-id propagation.

A *span* is one timed stage of work — flat dicts, not an OpenTelemetry
dependency: ``{"trace_id", "span_id", "parent_id", "name", "start",
"duration_s", ...attrs}``.  The taxonomy is small and fixed:

* pass stages: ``pass``, ``pass.parse``, ``pass.route``,
  ``pass.dispatch``, ``pass.evaluate``, ``pass.emit``;
* pool stages: ``pool.shard``, ``pool.ship``, ``pool.respawn``.

A *trace id* names one document's journey through the system.  The pool
layers mint one per served document and thread it everywhere that
document's work happens: across :class:`ServicePool` worker threads
(plain argument passing) and across the :class:`ProcessServicePool`
pipes — the parent stamps the trace id into each ``("doc", ...)``
message, the worker records its spans into a :class:`MemorySink`, and
ships them back inside the ``("served", ...)`` reply, where the parent
re-emits them into its own sink.  The result is the acceptance
criterion: one merged JSON-lines trace file in the parent where a
worker's ``pass.evaluate`` span and the parent's ``pool.ship`` /
``pool.respawn`` spans all carry the same trace id, even across a worker
crash-respawn (the slot remembers the in-flight document's trace id).

``start`` timestamps are wall-clock (``time.time()``) so spans from
different processes land on one comparable axis; ``duration_s`` is
measured with ``time.perf_counter()`` by the caller.  Stdlib only; no
``repro`` imports.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Optional


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (random, collision-safe per run)."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    return os.urandom(4).hex()


class SpanSink:
    """Destination for finished spans.  Subclasses override :meth:`emit`."""

    def emit(self, span: Dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        pass


class MemorySink(SpanSink):
    """Collects spans in memory — the worker-side buffer shipped back
    with each served document, and the handiest sink for tests."""

    def __init__(self):
        self._lock = threading.Lock()
        self._spans: List[Dict] = []

    def emit(self, span: Dict) -> None:
        with self._lock:
            self._spans.append(span)

    def drain(self) -> List[Dict]:
        """Return and clear everything collected so far."""
        with self._lock:
            spans, self._spans = self._spans, []
        return spans

    @property
    def spans(self) -> List[Dict]:
        with self._lock:
            return list(self._spans)


class JsonLinesSink(SpanSink):
    """Appends each span as one JSON line to a file (or file-like)."""

    def __init__(self, path_or_file):
        if hasattr(path_or_file, "write"):
            self._file = path_or_file
            self._owns = False
        else:
            self._file = open(path_or_file, "a", encoding="utf-8")
            self._owns = True
        self._lock = threading.Lock()

    def emit(self, span: Dict) -> None:
        line = json.dumps(span, sort_keys=True, default=str)
        with self._lock:
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self._owns:
                self._file.close()


class Span:
    """One in-flight stage; a context manager that emits itself on exit.

    Duration is ``perf_counter``-measured; extra attributes can be added
    mid-flight via :meth:`set` and land on the emitted dict.
    """

    __slots__ = ("_tracer", "name", "trace_id", "span_id", "parent_id", "_attrs",
                 "_start_wall", "_start_perf", "duration_s")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 parent_id: Optional[str], attrs: Dict):
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self._attrs = attrs
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        self.duration_s: Optional[float] = None

    def set(self, **attrs) -> None:
        self._attrs.update(attrs)

    def finish(self) -> Dict:
        if self.duration_s is None:
            self.duration_s = time.perf_counter() - self._start_perf
        span = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self._start_wall,
            "duration_s": self.duration_s,
        }
        span.update(self._attrs)
        self._tracer.emit(span)
        return span

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if exc_type is not None:
            self._attrs.setdefault("error", exc_type.__name__)
        self.finish()


class Tracer:
    """Mints trace ids, opens spans, and records pre-measured durations.

    Two recording styles, matching how the instrumented code measures:

    * :meth:`span` — a context manager for work bracketed in one place
      (a whole pass, a pool shard, a plan shipment);
    * :meth:`record` — for durations accumulated *across* many small
      slices (the dispatcher sums per-chunk route/dispatch/evaluate time
      and records one span per stage at pass finish, so tracing never
      adds a per-event timestamp pair to the hot loop).

    The sink decides where spans go: :class:`JsonLinesSink` in the
    parent (the ``--trace-out`` file), :class:`MemorySink` in pool
    workers (drained into the result pipe after each document).
    """

    def __init__(self, sink: SpanSink):
        self.sink = sink

    def span(self, name: str, trace_id: Optional[str] = None,
             parent_id: Optional[str] = None, **attrs) -> Span:
        return Span(self, name, trace_id or new_trace_id(), parent_id, attrs)

    def record(self, name: str, trace_id: str, duration_s: float,
               parent_id: Optional[str] = None, start: Optional[float] = None,
               span_id: Optional[str] = None, **attrs) -> Dict:
        """Emit a span for work already measured by the caller.

        ``span_id`` may be pinned by the caller when children recorded
        *before* their parent must reference it (a pass records its stage
        spans, then itself, all at finish time).
        """
        span = {
            "trace_id": trace_id,
            "span_id": span_id or new_span_id(),
            "parent_id": parent_id,
            "name": name,
            "start": time.time() if start is None else start,
            "duration_s": duration_s,
        }
        span.update(attrs)
        self.emit(span)
        return span

    def emit(self, span: Dict) -> None:
        """Forward a finished span dict to the sink.

        Also the merge point: the process pool parent calls this for each
        worker-shipped span so one file holds the whole trace.
        """
        self.sink.emit(span)

    def close(self) -> None:
        self.sink.close()
