"""Pickle-safety checker (``PS0xx``) for shipped plan artifacts.

``ProcessServicePool`` ships every registered query to its workers as a
:class:`~repro.runtime.plan_cache.PlanArtifact` whose payload is a
pickled :class:`~repro.runtime.compiler.CompiledQueryPlan`.  A frozen
``__slots__`` dataclass anywhere in that object graph breaks shipping at
runtime (the default slot-state restore calls ``setattr``, which a frozen
dataclass refuses), which is exactly how the ``dtd/model.py`` content
particles failed before PR 5 gave them slots-aware
``__getstate__``/``__setstate__``.  This checker makes that class of
regression static:

* The *reachable set* is computed from the roots (:data:`ROOTS`) over
  three edge kinds: dataclass/attribute annotations (``x: ElementDecl``
  pulls in ``ElementDecl``), base classes (their state is part of the
  instance), and subclasses of reachable classes (an annotation naming
  the base may carry any subclass at runtime).  Resolution is by bare
  class name across every analyzed module — deliberately conservative.
* ``PS001`` — a reachable frozen dataclass with ``__slots__`` (its own
  or inherited) and no slots-aware state protocol
  (``__getstate__`` + ``__setstate__``, or ``__reduce__`` /
  ``__reduce_ex__``) anywhere in its ancestry.
* ``PS002`` — a reachable class defining exactly one of
  ``__getstate__`` / ``__setstate__`` (a mismatched pair round-trips
  incorrectly).
* ``PS003`` — a reachable class whose field annotation names a
  known-unpicklable type (locks, threads, pipes, file handles,
  generators).

``# pickle-ok: <reason>`` on the ``class`` line suppresses its findings;
the reason is mandatory (``PS004`` otherwise).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.core import Checker, Finding, SourceFile

#: Root classes of the shipped-plan object graph.  ``PlanArtifact``'s
#: payload is opaque bytes, so the pickled payload root
#: (``CompiledQueryPlan``) is a root of its own.
ROOTS: Tuple[str, ...] = ("PlanArtifact", "CompiledQueryPlan")

_UNPICKLABLE_TYPES = {
    "Lock",
    "RLock",
    "Event",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Thread",
    "Connection",
    "PipeConnection",
    "Queue",
    "SimpleQueue",
    "IO",
    "TextIO",
    "BinaryIO",
    "Generator",
    "Iterator",
    "TracebackType",
}


@dataclass
class _ClassInfo:
    name: str
    path: str
    line: int
    bases: List[str] = field(default_factory=list)
    frozen_dataclass: bool = False
    own_slots: bool = False
    getstate: bool = False
    setstate: bool = False
    reduce: bool = False
    annotation_names: Set[str] = field(default_factory=set)
    annotation_lines: Dict[str, int] = field(default_factory=dict)
    pickle_ok: Optional[str] = None


def _base_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):  # Generic[T] and friends
        return _base_name(node.value)
    return None


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call):
            name = _base_name(decorator.func)
            if name == "dataclass":
                for keyword in decorator.keywords:
                    if (
                        keyword.arg == "frozen"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        return True
    return False


def _annotation_names(annotation: ast.expr) -> Set[str]:
    names: Set[str] = set()
    for sub in ast.walk(annotation):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # String annotation ("ElementDecl"): parse it too.
            try:
                parsed = ast.parse(sub.value, mode="eval")
            except SyntaxError:
                continue
            names.update(_annotation_names(parsed.body))
    return names


class PickleSafetyChecker(Checker):
    name = "pickle-safety"
    codes = {
        "PS001": "plan-reachable frozen slots dataclass without a state protocol",
        "PS002": "plan-reachable class with mismatched __getstate__/__setstate__",
        "PS003": "plan-reachable class annotates a known-unpicklable field type",
        "PS004": "pickle-ok annotation is missing its reason",
    }

    def __init__(self, roots: Tuple[str, ...] = ROOTS):
        self.roots = roots
        self._classes: Dict[str, List[_ClassInfo]] = {}

    def check(self, module: SourceFile) -> List[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                self._record_class(module, node)
        return []

    def _record_class(self, module: SourceFile, node: ast.ClassDef) -> None:
        info = _ClassInfo(name=node.name, path=module.path, line=node.lineno)
        info.frozen_dataclass = _is_frozen_dataclass(node)
        info.pickle_ok = module.annotation(node.lineno, "pickle-ok")
        for base in node.bases:
            name = _base_name(base)
            if name is not None:
                info.bases.append(name)
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "__slots__":
                        info.own_slots = self._nonempty_slots(stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if stmt.target.id == "__slots__":
                    info.own_slots = stmt.value is None or self._nonempty_slots(stmt.value)
                    continue
                for name in _annotation_names(stmt.annotation):
                    info.annotation_names.add(name)
                    info.annotation_lines.setdefault(name, stmt.lineno)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name == "__getstate__":
                    info.getstate = True
                elif stmt.name == "__setstate__":
                    info.setstate = True
                elif stmt.name in ("__reduce__", "__reduce_ex__"):
                    info.reduce = True
        self._classes.setdefault(node.name, []).append(info)

    @staticmethod
    def _nonempty_slots(value: ast.expr) -> bool:
        if isinstance(value, (ast.Tuple, ast.List)):
            return bool(value.elts)
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return bool(value.value)
        return True  # dynamic __slots__: assume it holds names

    # -------------------------------------------------------- reachability

    def _reachable(self) -> Set[str]:
        children: Dict[str, Set[str]] = {}
        for name, infos in self._classes.items():
            for info in infos:
                for base in info.bases:
                    children.setdefault(base, set()).add(name)
        seen: Set[str] = set()
        queue: List[str] = [root for root in self.roots if root in self._classes]
        while queue:
            name = queue.pop()
            if name in seen:
                continue
            seen.add(name)
            for info in self._classes.get(name, []):
                for edge in info.bases:
                    if edge in self._classes and edge not in seen:
                        queue.append(edge)
                for edge in info.annotation_names:
                    if edge in self._classes and edge not in seen:
                        queue.append(edge)
            for sub in children.get(name, ()):
                if sub not in seen:
                    queue.append(sub)
        return seen

    def _ancestry(self, info: _ClassInfo) -> List[_ClassInfo]:
        out: List[_ClassInfo] = []
        seen: Set[str] = set()
        queue = [info.name]
        while queue:
            name = queue.pop()
            if name in seen:
                continue
            seen.add(name)
            for candidate in self._classes.get(name, []):
                out.append(candidate)
                queue.extend(candidate.bases)
        return out

    def finalize(self) -> List[Finding]:
        findings: List[Finding] = []
        reachable = self._reachable()
        for name in sorted(reachable):
            for info in self._classes.get(name, []):
                findings.extend(self._check_info(info))
        return findings

    def _check_info(self, info: _ClassInfo) -> List[Finding]:
        findings: List[Finding] = []
        if info.pickle_ok is not None:
            if not info.pickle_ok:
                findings.append(
                    self.finding(
                        "PS004",
                        info.path,
                        info.line,
                        f"{info.name}: '# pickle-ok:' needs a reason stating why "
                        "pickling is safe or out of scope",
                    )
                )
            return findings
        ancestry = self._ancestry(info)
        slotted = any(c.own_slots for c in ancestry)
        getstate = any(c.getstate for c in ancestry)
        setstate = any(c.setstate for c in ancestry)
        reduce = any(c.reduce for c in ancestry)
        if info.frozen_dataclass and slotted and not ((getstate and setstate) or reduce):
            findings.append(
                self.finding(
                    "PS001",
                    info.path,
                    info.line,
                    f"{info.name} is a frozen __slots__ dataclass reachable from "
                    "the shipped plan; it needs slots-aware __getstate__/"
                    "__setstate__ (or __reduce__) to survive pickling",
                )
            )
        if getstate != setstate:
            have, miss = ("__getstate__", "__setstate__") if getstate else ("__setstate__", "__getstate__")
            findings.append(
                self.finding(
                    "PS002",
                    info.path,
                    info.line,
                    f"{info.name} defines {have} without {miss}; pickled state "
                    "will not round-trip",
                )
            )
        for type_name in sorted(info.annotation_names & _UNPICKLABLE_TYPES):
            findings.append(
                self.finding(
                    "PS003",
                    info.path,
                    info.annotation_lines.get(type_name, info.line),
                    f"{info.name} annotates a field with unpicklable type "
                    f"{type_name} but is reachable from the shipped plan",
                )
            )
        return findings

