"""Hot-loop purity checker (``HL0xx``).

ROADMAP open item 2 sets a speed ceiling for the per-event path: no
per-event allocations, no repeated attribute/global lookups that a local
would amortize, no ``isinstance`` dispatch, no ``try``/``except`` entry.
This checker enforces those rules for every function carrying a
``# hot-loop`` marker (on its ``def`` line or the line above), and
insists that the known per-event functions — the projection router, the
dispatcher feed, the incremental parser — stay marked.

Rules:

* ``HL001`` — a per-call allocation: list/set/dict/tuple displays,
  comprehensions, generator expressions, lambdas, f-strings, calls to the
  allocating builtins (``list``, ``dict``, ``set``, ``frozenset``,
  ``bytearray``, ``tuple``) or to a CamelCase name (constructor by
  convention).
* ``HL002`` — the same attribute chain or global name is loaded two or
  more times per call without being hoisted into a local (chains that
  the function also *assigns* are exempt: a read-modify-write must go
  through the attribute).
* ``HL003`` — ``isinstance`` dispatch.
* ``HL004`` — ``try``/``except`` entry (Python sets up the handler on
  every entry; the hot path must not pay for the rare path).
* ``HL005`` — a function this repo promises is hot (see
  :data:`REQUIRED_HOT`) has lost its ``# hot-loop`` marker.

``# hot-loop-ok: <reason>`` on the offending line suppresses HL001-HL004;
the reason is mandatory (a bare marker is reported as the finding it
tried to suppress, plus ``HL006``).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import Checker, Finding, SourceFile

#: Functions that must stay marked ``# hot-loop`` (path suffix, qualname).
REQUIRED_HOT: Tuple[Tuple[str, str], ...] = (
    ("service/dispatcher.py", "SharedProjectionIndex.route"),
    ("service/dispatcher.py", "SharedProjectionIndex._route_start"),
    ("service/dispatcher.py", "SharedDispatcher.dispatch"),
    ("xmlstream/parser.py", "StreamingXMLParser.feed"),
)

_ALLOCATING_BUILTINS = {"list", "dict", "set", "frozenset", "bytearray", "tuple"}

#: Builtin names whose repeated lookup we tolerate (cheap, idiomatic).
_BENIGN_GLOBALS = {
    "len",
    "iter",
    "next",
    "range",
    "bool",
    "int",
    "str",
    "None",
    "True",
    "False",
    "min",
    "max",
    "abs",
    "id",
    "type",
}


def _is_camel_case(name: str) -> bool:
    bare = name.lstrip("_")
    return bool(bare) and bare[0].isupper() and not bare.isupper()


def _chain(node: ast.expr) -> Optional[str]:
    """``self._stack`` for an attribute chain rooted at a plain name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _FunctionScanner(ast.NodeVisitor):
    """One marked function: collect loads, stores, and rule hits."""

    def __init__(self) -> None:
        self.loads: List[Tuple[str, int]] = []
        self.stores: Set[str] = set()
        self.locals: Set[str] = set()
        self.allocations: List[Tuple[int, str]] = []
        self.isinstance_calls: List[int] = []
        self.tries: List[int] = []

    def scan_function(self, node: ast.AST) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = node.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            self.locals.add(arg.arg)
        if args.vararg is not None:
            self.locals.add(args.vararg.arg)
        if args.kwarg is not None:
            self.locals.add(args.kwarg.arg)
        for stmt in node.body:
            self.visit(stmt)

    # -- allocations --------------------------------------------------
    def _alloc(self, node: ast.AST, what: str) -> None:
        self.allocations.append((node.lineno, what))  # type: ignore[attr-defined]

    def visit_List(self, node: ast.List) -> None:
        if isinstance(node.ctx, ast.Load):
            self._alloc(node, "list display")
        self.generic_visit(node)

    def visit_Set(self, node: ast.Set) -> None:
        self._alloc(node, "set display")
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        self._alloc(node, "dict display")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._alloc(node, "list comprehension")
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._alloc(node, "set comprehension")
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._alloc(node, "dict comprehension")
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._alloc(node, "generator expression")
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._alloc(node, "lambda")
        self.generic_visit(node)

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        self._alloc(node, "f-string")
        # No generic_visit: the FormattedValue internals are part of it.

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "isinstance":
                self.isinstance_calls.append(node.lineno)
            elif func.id in _ALLOCATING_BUILTINS:
                self._alloc(node, f"{func.id}() call")
            elif _is_camel_case(func.id):
                self._alloc(node, f"{func.id}(...) construction")
        self.generic_visit(node)

    # -- try/except ---------------------------------------------------
    def visit_Try(self, node: ast.Try) -> None:
        self.tries.append(node.lineno)
        self.generic_visit(node)

    # -- loads/stores -------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = _chain(node)
        if chain is None:
            self.generic_visit(node)
            return
        if isinstance(node.ctx, ast.Load):
            self.loads.append((chain, node.lineno))
        else:
            self.stores.add(chain)
        # Do not descend: the chain is one lookup unit.

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.loads.append((node.id, node.lineno))
        else:
            self.locals.add(node.id)
            self.stores.add(node.id)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.locals.add(node.name)
        self._alloc(node, "nested function definition")

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.locals.add(node.name)
        self._alloc(node, "nested function definition")

    def visit_comprehension(self, node: ast.comprehension) -> None:
        for name in ast.walk(node.target):
            if isinstance(name, ast.Name):
                self.locals.add(name.id)
        self.generic_visit(node)


class HotLoopChecker(Checker):
    name = "hot-loop"
    codes = {
        "HL001": "per-call allocation in a hot-loop function",
        "HL002": "repeated attribute/global load not hoisted to a local",
        "HL003": "isinstance dispatch in a hot-loop function",
        "HL004": "try/except entry in a hot-loop function",
        "HL005": "required hot function is missing its # hot-loop marker",
        "HL006": "hot-loop-ok annotation is missing its reason",
    }

    def check(self, module: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        marked: Dict[str, ast.AST] = {}

        def walk(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}{child.name}"
                    if self._is_marked(module, child):
                        marked[qualname] = child
                    walk(child, f"{qualname}.<locals>.")
                elif isinstance(child, ast.ClassDef):
                    walk(child, f"{prefix}{child.name}.")
                else:
                    walk(child, prefix)

        walk(module.tree, "")

        for suffix, qualname in REQUIRED_HOT:
            if module.path.endswith(suffix) and qualname not in marked:
                findings.append(
                    self.finding(
                        "HL005",
                        module.path,
                        1,
                        f"{qualname} must carry a # hot-loop marker "
                        "(per-event path, ROADMAP item 2)",
                    )
                )

        for qualname, node in sorted(marked.items()):
            findings.extend(self._check_function(module, qualname, node))
        return findings

    def _is_marked(self, module: SourceFile, node: ast.AST) -> bool:
        line = node.lineno  # type: ignore[attr-defined]
        return module.has_marker(line, "hot-loop") or module.has_marker(line - 1, "hot-loop")

    def _suppressed(self, module: SourceFile, line: int, findings: List[Finding]) -> bool:
        reason = module.annotation_near(line, "hot-loop-ok")
        if reason is None:
            return False
        if not reason:
            findings.append(
                self.finding(
                    "HL006",
                    module.path,
                    line,
                    "'# hot-loop-ok:' needs a reason stating why the cost is accepted",
                )
            )
            return False
        return True

    def _check_function(
        self, module: SourceFile, qualname: str, node: ast.AST
    ) -> List[Finding]:
        findings: List[Finding] = []
        scanner = _FunctionScanner()
        scanner.scan_function(node)

        for line, what in scanner.allocations:
            if not self._suppressed(module, line, findings):
                findings.append(
                    self.finding(
                        "HL001", module.path, line, f"{qualname}: per-call allocation ({what})"
                    )
                )
        for line in scanner.isinstance_calls:
            if not self._suppressed(module, line, findings):
                findings.append(
                    self.finding(
                        "HL003",
                        module.path,
                        line,
                        f"{qualname}: isinstance dispatch (ROADMAP item 2 bans it "
                        "from the per-event loop)",
                    )
                )
        for line in scanner.tries:
            if not self._suppressed(module, line, findings):
                findings.append(
                    self.finding(
                        "HL004",
                        module.path,
                        line,
                        f"{qualname}: try/except entered on the hot path",
                    )
                )

        counts: Dict[str, List[int]] = {}
        for chain, line in scanner.loads:
            counts.setdefault(chain, []).append(line)
        for chain, lines in sorted(counts.items()):
            if len(lines) < 2:
                continue
            root = chain.split(".", 1)[0]
            if chain in scanner.stores:
                continue  # read-modify-write must go through the attribute
            if "." not in chain:
                # A bare name: only repeated *global* loads are findings.
                if chain in scanner.locals or chain in _BENIGN_GLOBALS:
                    continue
            elif root != "self" and root not in scanner.locals:
                # A chain rooted at a global (module.attr): still a repeated
                # lookup, keep it.
                pass
            line = sorted(lines)[1]
            if not self._suppressed(module, line, findings):
                findings.append(
                    self.finding(
                        "HL002",
                        module.path,
                        line,
                        f"{qualname}: {chain} loaded {len(lines)}x per call; "
                        "hoist it into a local",
                    )
                )
        return findings
