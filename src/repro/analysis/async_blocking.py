"""Async-blocking checker (``AB0xx``).

The asyncio front end (``service/async_service.py``, the asyncio pool in
``service/pool.py``) must never block the event loop: one synchronous
``time.sleep`` or pipe ``recv`` stalls *every* document being served.
This checker flags, inside any ``async def``:

* ``AB001`` — ``time.sleep`` (or a bare ``sleep`` imported from
  :mod:`time`).
* ``AB002`` — blocking pipe/socket waits: ``.recv()``, ``.recv_bytes()``,
  ``.poll()`` (the :class:`multiprocessing.connection.Connection` API).
* ``AB003`` — synchronous file I/O: ``open()`` / ``io.open()`` and
  ``.read()`` / ``.readline()`` / ``.readinto()`` / ``.write()`` /
  ``.flush()`` calls.
* ``AB004`` — a bare ``.acquire()`` (a threading lock blocks the loop;
  an :class:`asyncio.Lock` is awaited, which the checker recognises and
  allows).

Calls that are directly awaited are exempt (``await lock.acquire()`` is
the asyncio API, not a block), as is anything inside a nested *sync*
``def`` (it runs wherever the caller runs it — usually an executor).
``# async-ok: <reason>`` on the line suppresses a finding; the reason is
mandatory (``AB005`` otherwise).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from repro.analysis.core import Checker, Finding, SourceFile

_BLOCKING_METHODS = {
    "recv": "AB002",
    "recv_bytes": "AB002",
    "poll": "AB002",
    "read": "AB003",
    "readline": "AB003",
    "readinto": "AB003",
    "write": "AB003",
    "flush": "AB003",
    "acquire": "AB004",
}


def _call_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _dotted(func: ast.expr) -> Optional[str]:
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class AsyncBlockingChecker(Checker):
    name = "async-blocking"
    codes = {
        "AB001": "time.sleep inside async def",
        "AB002": "blocking Connection recv/poll inside async def",
        "AB003": "synchronous file I/O inside async def",
        "AB004": "bare lock acquire inside async def",
        "AB005": "async-ok annotation is missing its reason",
    }

    def check(self, module: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        sleep_is_time = any(
            isinstance(node, ast.ImportFrom)
            and node.module == "time"
            and any(alias.name == "sleep" for alias in node.names)
            for node in module.tree.body
        )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                self._check_async_def(module, node, sleep_is_time, findings)
        return findings

    def _check_async_def(
        self,
        module: SourceFile,
        node: ast.AsyncFunctionDef,
        sleep_is_time: bool,
        findings: List[Finding],
    ) -> None:
        awaited: Set[int] = set()

        def scan(current: ast.AST) -> None:
            if isinstance(current, (ast.FunctionDef, ast.Lambda)):
                return  # nested sync code runs elsewhere (executor, thread)
            if isinstance(current, ast.AsyncFunctionDef):
                return  # nested coroutine: checked by its own walk visit
            if isinstance(current, ast.Await):
                if isinstance(current.value, ast.Call):
                    awaited.add(id(current.value))
                scan(current.value)
                return
            if isinstance(current, ast.Call):
                self._check_call(module, current, id(current) in awaited, sleep_is_time, findings)
            for child in ast.iter_child_nodes(current):
                scan(child)

        for stmt in node.body:
            scan(stmt)

    def _check_call(
        self,
        module: SourceFile,
        call: ast.Call,
        is_awaited: bool,
        sleep_is_time: bool,
        findings: List[Finding],
    ) -> None:
        if is_awaited:
            return
        dotted = _dotted(call.func)
        name = _call_name(call.func)
        code: Optional[str] = None
        what = ""
        if dotted == "time.sleep" or (name == "sleep" and sleep_is_time and dotted == "sleep"):
            code, what = "AB001", "time.sleep() blocks the event loop"
        elif dotted in ("open", "io.open"):
            code, what = "AB003", f"{dotted}() is synchronous file I/O"
        elif name in _BLOCKING_METHODS and isinstance(call.func, ast.Attribute):
            code = _BLOCKING_METHODS[name]
            if code == "AB002":
                what = f".{name}() blocks on the pipe"
            elif code == "AB003":
                what = f".{name}() is synchronous I/O"
            else:
                what = f".{name}() without await blocks the event loop"
        if code is None:
            return
        line = call.lineno
        reason = module.annotation_near(line, "async-ok")
        if reason is not None and reason:
            return
        if reason is not None:
            findings.append(
                self.finding(
                    "AB005",
                    module.path,
                    line,
                    "'# async-ok:' needs a reason stating why the call cannot block",
                )
            )
        findings.append(self.finding(code, module.path, line, what))
