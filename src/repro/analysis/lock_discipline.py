"""Lock-discipline checker (``LD0xx``), guarded-by style.

For every class, the checker infers the set of *guarded fields*: instance
attributes assigned inside a ``with self.<lock>:`` block (any ``self``
attribute used as a with-context counts as a lock; so does an attribute
whose ``.acquire()``/``.release()`` is called).  Every later read or write
of a guarded field must then happen while that same lock is held —
anything else is a potential race and is flagged, in the style of classic
guarded-by race detectors.

Escape hatches, in source comments:

* ``# guarded-by: <lock>`` on an assignment line declares the guarding
  lock explicitly (useful in ``__init__``, which establishes fields
  before there is any concurrency).
* ``# unguarded: <reason>`` on an access line — or on the ``def`` line,
  for a whole method — states why the unlocked access is benign (single
  driver thread, caller holds the lock, ...).  The reason is mandatory;
  a bare ``# unguarded`` is itself a finding.

Conventions honoured without annotation:

* ``__init__`` / ``__post_init__`` / ``__new__`` construct the object
  before it is shared; they are never flagged.
* Methods whose name ends in ``_locked`` are, by convention, only called
  with the lock already held.
* Code inside a nested function or lambda is treated as running with *no*
  lock held (closures escape to other threads in this codebase).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.core import Checker, Finding, SourceFile

_CONSTRUCTORS = {"__init__", "__post_init__", "__new__"}


@dataclass(frozen=True)
class _Access:
    field: str
    line: int
    store: bool
    held: FrozenSet[str]
    method: str
    suppressed: bool
    guarded_by: Optional[str]


def _self_attr(node: ast.expr) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


#: Methods that mutate a container in place: calling one on ``self.X``
#: counts as a *write* of ``X`` for guarded-field inference.
_MUTATORS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "setdefault",
    "update",
}


def _self_base(node: ast.expr) -> Optional[str]:
    """The ``X`` in ``self.X[...] .y[...]`` — the self attribute a chain roots at."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        direct = _self_attr(node) if isinstance(node, ast.Attribute) else None
        if direct is not None:
            return direct
        node = node.value
    return None


class _ClassScanner:
    """Collect lock regions and ``self.X`` accesses for one class body."""

    def __init__(self, module: SourceFile, class_node: ast.ClassDef):
        self.module = module
        self.class_node = class_node
        self.locks: Set[str] = set()
        self.accesses: List[_Access] = []
        self.suppressed_methods: Set[str] = set()
        self.bare_unguarded: Set[int] = set()

    def scan(self) -> None:
        for stmt in self.class_node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                reason = self.module.annotation(stmt.lineno, "unguarded")
                if reason is not None:
                    if not reason:
                        self.bare_unguarded.add(stmt.lineno)
                    self.suppressed_methods.add(stmt.name)
                self._scan_node(stmt, frozenset(), stmt.name, toplevel=True)

    def _scan_node(
        self, node: ast.AST, held: FrozenSet[str], method: str, toplevel: bool = False
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and not toplevel:
            # A nested function escapes the lock region: its body may run
            # on another thread, after the with-block exits.
            for child in ast.iter_child_nodes(node):
                self._scan_node(child, frozenset(), method)
            return
        if isinstance(node, ast.Lambda):
            self._scan_node(node.body, frozenset(), method)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: Set[str] = set(held)
            for item in node.items:
                self._scan_node(item.context_expr, held, method)
                if item.optional_vars is not None:
                    self._scan_node(item.optional_vars, held, method)
                lock = _self_attr(item.context_expr)
                if lock is not None:
                    acquired.add(lock)
                    self.locks.add(lock)
            inner = frozenset(acquired)
            for stmt in node.body:
                self._scan_node(stmt, inner, method)
            return
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in ("acquire", "release"):
                    lock = _self_attr(func.value)
                    if lock is not None:
                        self.locks.add(lock)
                elif func.attr in _MUTATORS:
                    base = _self_base(func.value)
                    if base is not None:
                        self._record(base, func.value.lineno, True, held, method)
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, (ast.Store, ast.Del)):
            base = _self_base(node)
            if base is not None:
                self._record(base, node.lineno, True, held, method)
        if isinstance(node, ast.Attribute):
            field = _self_attr(node)
            if field is not None:
                self._record(
                    field, node.lineno, isinstance(node.ctx, (ast.Store, ast.Del)), held, method
                )
                return
        for child in ast.iter_child_nodes(node):
            self._scan_node(child, held, method)

    def _record(
        self, field: str, line: int, store: bool, held: FrozenSet[str], method: str
    ) -> None:
        reason = self.module.annotation_near(line, "unguarded")
        if reason is not None and not reason:
            self.bare_unguarded.add(line)
        self.accesses.append(
            _Access(
                field=field,
                line=line,
                store=store,
                held=held,
                method=method,
                suppressed=reason is not None,
                guarded_by=self.module.annotation_near(line, "guarded-by"),
            )
        )


class LockDisciplineChecker(Checker):
    name = "lock-discipline"
    codes = {
        "LD001": "guarded field accessed without its lock held",
        "LD002": "guarded field accessed under a different lock",
        "LD003": "guarded-by annotation names a lock the class never takes",
        "LD004": "unguarded annotation is missing its reason",
    }

    def check(self, module: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node))
        return findings

    def _check_class(self, module: SourceFile, node: ast.ClassDef) -> List[Finding]:
        scanner = _ClassScanner(module, node)
        scanner.scan()
        findings: List[Finding] = []
        for line in sorted(scanner.bare_unguarded):
            findings.append(
                self.finding(
                    "LD004",
                    module.path,
                    line,
                    f"{node.name}: '# unguarded:' needs a reason stating why the "
                    "unlocked access is benign",
                )
            )

        # Guarded-field inference: declared (# guarded-by) beats inferred
        # (assigned inside a lock region outside the constructor).
        guards: Dict[str, Set[str]] = {}
        declared: Set[str] = set()
        for access in scanner.accesses:
            if access.guarded_by is not None:
                lock = access.guarded_by.replace("self.", "").strip()
                if not lock:
                    continue
                if lock not in scanner.locks:
                    findings.append(
                        self.finding(
                            "LD003",
                            module.path,
                            access.line,
                            f"{node.name}.{access.field} declared guarded-by "
                            f"self.{lock}, but the class never holds that lock",
                        )
                    )
                    continue
                guards.setdefault(access.field, set()).add(lock)
                declared.add(access.field)
        for access in scanner.accesses:
            if (
                access.store
                and access.held
                and access.method not in _CONSTRUCTORS
                and access.field not in scanner.locks
                and access.field not in declared
            ):
                guards.setdefault(access.field, set()).update(access.held)

        seen: Set[Tuple[str, str, int]] = set()
        for access in scanner.accesses:
            locks = guards.get(access.field)
            if not locks:
                continue
            if (
                access.suppressed
                or access.guarded_by is not None
                or access.method in _CONSTRUCTORS
                or access.method in scanner.suppressed_methods
                or access.method.endswith("_locked")
                or access.held & locks
            ):
                continue
            verb = "written" if access.store else "read"
            lock_names = ", ".join(f"self.{lock}" for lock in sorted(locks))
            if access.held:
                code = "LD002"
                held_names = ", ".join(f"self.{lock}" for lock in sorted(access.held))
                message = (
                    f"{node.name}.{access.method}: self.{access.field} is guarded by "
                    f"{lock_names} but {verb} under {held_names}"
                )
            else:
                code = "LD001"
                message = (
                    f"{node.name}.{access.method}: self.{access.field} is guarded by "
                    f"{lock_names} but {verb} without it"
                )
            key = (code, access.field, access.line)
            if key in seen:
                continue
            seen.add(key)
            findings.append(self.finding(code, module.path, access.line, message))
        return findings
