"""Rendering for ``repro explain``: plan DAG, bounds, cost, and mode.

Pure string builders over the analyzer's dataclasses — the CLI composes
these with the optimizer's own ``describe()`` stages, and the golden
test in CI pins the output for an example query.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.analysis.query.bounds import (
    HandlerBufferBound,
    PlanBufferAnalysis,
    classify_plan,
)
from repro.analysis.query.cost import CostEstimate, apply_observations, estimate_cost
from repro.analysis.query.modes import ModeDecision, select_mode
from repro.dtd.model import INFINITY
from repro.runtime.plan import (
    BufferedEvalOp,
    ConstructorOp,
    CopyVarOp,
    IfOp,
    OnFirstHandlerOp,
    OnHandlerOp,
    PhysicalPlan,
    PlanOp,
    ProcessStreamOp,
    SequenceOp,
    TextOp,
)

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.runtime.compiler import CompiledQueryPlan
    from repro.runtime.plan_cache import PlanObservations

_EXPR_WIDTH = 60


def _num(value: float) -> str:
    """Compact number formatting; ``inf`` for unbounded quantities."""
    if value >= INFINITY:
        return "inf"
    if value == int(value):
        return str(int(value))
    return "{0:.1f}".format(value)


def _expr_text(text: str) -> str:
    text = " ".join(text.split())
    if len(text) > _EXPR_WIDTH:
        return text[: _EXPR_WIDTH - 3] + "..."
    return text


def _op_label(op: PlanOp, bound: Optional[HandlerBufferBound]) -> str:
    if isinstance(op, ProcessStreamOp):
        extras = ""
        if op.buffer_whole:
            extras = "  (buffers whole subtree)"
        elif op.buffer_labels:
            extras = "  (buffers: {0})".format(", ".join(sorted(op.buffer_labels)))
        return "process-stream {0} : {1}{2}".format(op.var, op.element_type, extras)
    if isinstance(op, OnHandlerOp):
        return "on {0} as {1}  [stream]".format(op.label, op.var)
    if isinstance(op, OnFirstHandlerOp):
        if op.always_satisfied:
            condition = "on-first immediate"
        else:
            condition = "on-first past({0})".format(", ".join(sorted(op.labels)))
        if bound is None:
            return condition
        return "{0}  [{1}, degree {2}, ~{3} firing(s)/doc]".format(
            condition, bound.buffer_class, _num(bound.degree), _num(bound.cardinality)
        )
    if isinstance(op, BufferedEvalOp):
        return "buffered-eval {0}".format(_expr_text(op.expr.to_xquery()))
    if isinstance(op, IfOp):
        return "if {0}".format(_expr_text(op.condition.to_xquery()))
    if isinstance(op, CopyVarOp):
        return "copy {0}".format(op.var)
    if isinstance(op, ConstructorOp):
        attributes = "".join(
            ' {0}="{1}"'.format(name, value) for name, value in op.attributes
        )
        return "element <{0}{1}>".format(op.name, attributes)
    if isinstance(op, TextOp):
        return "text {0!r}".format(op.text)
    if isinstance(op, SequenceOp):
        return "seq"
    return type(op).__name__


def render_plan(plan: PhysicalPlan, analysis: PlanBufferAnalysis) -> str:
    """Indented plan DAG with buffer classes on every buffered handler.

    Walk order and paths match :func:`~repro.analysis.query.bounds
    .classify_plan` so handler annotations line up.
    """
    by_path = analysis.by_path()
    lines: List[str] = []

    def visit(op: PlanOp, depth: int, path: str) -> None:
        lines.append("  " * depth + _op_label(op, by_path.get(path)))
        for index, child in enumerate(op.children()):
            visit(child, depth + 1, "{0}/{1}".format(path, index))

    visit(plan.root, 0, "0")
    return "\n".join(lines)


def render_bounds(analysis: PlanBufferAnalysis) -> str:
    """Per-handler buffer-bound detail (one block per buffered handler)."""
    if not analysis.handlers:
        return "fully streaming: no buffered handlers"
    lines: List[str] = []
    for handler in analysis.handlers:
        condition = ", ".join(handler.past_labels) or "immediate"
        lines.append(
            "on-first past({0}) under {1}:{2} -- {3} (degree {4}, ~{5} firing(s)/doc)".format(
                condition,
                handler.stream_var,
                handler.element_type,
                handler.buffer_class,
                _num(handler.degree),
                _num(handler.cardinality),
            )
        )
        for reason in handler.reasons:
            lines.append("    - {0}".format(reason))
    lines.append("plan class: {0}".format(analysis.plan_class))
    return "\n".join(lines)


def render_cost(estimate: CostEstimate) -> str:
    """The predicted per-document cost figures."""
    lines = [
        "events routed/doc : {0}".format(_num(round(estimate.events_routed, 1))),
        "items buffered/doc: {0}".format(_num(round(estimate.items_buffered, 1))),
        "per-event cost    : {0:.2f}".format(estimate.per_event_cost),
        "predicted score   : {0} ({1:.3f} per document event)".format(
            _num(round(estimate.score, 1)), estimate.cost_per_event
        ),
    ]
    if estimate.observed_passes > 0:
        lines.append(
            "calibrated from {0} observed pass(es)".format(estimate.observed_passes)
        )
    return "\n".join(lines)


def render_mode(decision: ModeDecision) -> str:
    """The chosen execution mode plus the policy's reasoning."""
    lines = ["chosen: {0}".format(decision.describe())]
    for reason in decision.reasons:
        lines.append("    - {0}".format(reason))
    return "\n".join(lines)


def explain_compiled(
    entry: "CompiledQueryPlan",
    *,
    document_bytes: Optional[int] = None,
    document_count: int = 1,
    cpu_count: Optional[int] = None,
    observations: "Optional[PlanObservations]" = None,
    fleet: Optional[Sequence[CostEstimate]] = None,
) -> str:
    """Full analyzer report for one compiled query.

    ``fleet`` can supply cost estimates of *other* co-registered queries
    so mode selection sees the whole workload; the entry's own estimate
    is always included.
    """
    analysis = classify_plan(entry.plan)
    estimate = apply_observations(estimate_cost(entry, analysis), observations)
    costs = [estimate] + list(fleet or ())
    decision = select_mode(
        costs,
        document_bytes=document_bytes,
        document_count=document_count,
        cpu_count=cpu_count,
    )
    sections = [
        "== Plan DAG ==",
        render_plan(entry.plan, analysis),
        "== Buffer bounds ==",
        render_bounds(analysis),
        "== Static cost ==",
        render_cost(estimate),
        "== Execution mode ==",
        render_mode(decision),
    ]
    return "\n".join(sections)
