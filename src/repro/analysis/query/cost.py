"""Cardinality and per-event cost estimation.

Folds the automaton fan-out estimates with the plan's projection paths
and condition arity into a single comparable score per query:

``events_routed``
    Parser events the router must deliver to this plan per document,
    estimated by walking the projection tree with per-axis counts from
    :func:`repro.analysis.query.bounds.estimate_count` (whole-subtree
    keeps expand to estimated subtree events).
``items_buffered``
    Items parked in ``on-first`` buffers per document: handler firing
    cardinality × estimated items per firing.
``per_event_cost``
    Relative work per routed event, grown by handler count and on-first
    condition arity (each label widens the router's match set).

``score = events_routed × per_event_cost + weight × items_buffered`` —
an abstract unit meant for *ranking* queries and sizing fleets, not for
wall-clock prediction.  Observed pass metrics persisted with plan-cache
snapshots can recalibrate the event estimate
(:func:`apply_observations`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional, Set

from repro.analysis.query.bounds import (
    BufferedAxis,
    PlanBufferAnalysis,
    classify_plan,
    estimate_count,
)
from repro.dtd.model import INFINITY
from repro.engines.projection_engine import ProjectionNode, projection_paths
from repro.xquery.analysis import WHOLE_SUBTREE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.runtime.compiler import CompiledQueryPlan
    from repro.runtime.plan_cache import PlanObservations

#: Start/end/text events one element node contributes on average.
EVENTS_PER_NODE = 3.0
#: Score units one buffered item costs relative to one routed event.
BUFFER_ITEM_WEIGHT = 4.0
#: Node estimate for subtrees without a static bound (recursion, ``ANY``,
#: undeclared elements, or no DTD).
UNBOUNDED_SUBTREE_NODES = 64.0
#: Rough serialized size of one parser event, used to turn document bytes
#: into an event estimate for mode selection.
BYTES_PER_EVENT = 24.0


def estimate_subtree_nodes(dtd: Optional[object], name: str) -> float:
    """Estimated element nodes in one subtree rooted at ``name``.

    Exact products of automaton maxima where bounded, with repeating axes
    clamped to :data:`~repro.analysis.query.bounds.REPEAT_ESTIMATE` and
    unbounded structures (recursion, ``ANY``, undeclared) clamped to
    :data:`UNBOUNDED_SUBTREE_NODES`.
    """
    if dtd is None:
        return UNBOUNDED_SUBTREE_NODES

    def nodes(element: str, seen: Set[str]) -> float:
        if element == "#document":
            root = str(dtd.root)  # type: ignore[attr-defined]
            return nodes(root, seen)
        if element in seen:
            return UNBOUNDED_SUBTREE_NODES
        has_element = bool(dtd.has_element(element))  # type: ignore[attr-defined]
        if not has_element:
            return UNBOUNDED_SUBTREE_NODES
        total = 1.0
        seen = seen | {element}
        for label in dtd.element(element).child_labels():  # type: ignore[attr-defined]
            count = estimate_count(dtd, element, label)
            total += count * nodes(str(label), seen)
        return min(total, 1e9)

    return nodes(name, set())


def estimate_document_events(dtd: Optional[object]) -> float:
    """Estimated parser events for one document conforming to ``dtd``."""
    if dtd is None:
        return EVENTS_PER_NODE * UNBOUNDED_SUBTREE_NODES
    return EVENTS_PER_NODE * estimate_subtree_nodes(dtd, "#document")


@dataclass(frozen=True)
class CostEstimate:
    """Predicted per-document cost of one compiled query."""

    events_routed: float
    items_buffered: float
    per_event_cost: float
    document_events: float
    score: float
    observed_passes: int = 0  # > 0 once calibrated against pass metrics

    @property
    def cost_per_event(self) -> float:
        """Score normalized by the document's estimated event count."""
        return self.score / max(self.document_events, 1.0)

    def as_dict(self) -> "dict[str, float]":
        return {
            "events_routed": self.events_routed,
            "items_buffered": self.items_buffered,
            "per_event_cost": self.per_event_cost,
            "document_events": self.document_events,
            "score": self.score,
            "cost_per_event": self.cost_per_event,
            "observed_passes": float(self.observed_passes),
        }


def _axis_items(dtd: Optional[object], axis: BufferedAxis) -> float:
    """Estimated buffered items one handler firing parks for ``axis``."""
    if axis.label == WHOLE_SUBTREE:
        return estimate_subtree_nodes(dtd, axis.element_type)
    if axis.max_count >= INFINITY:
        count = estimate_count(dtd, axis.element_type, axis.label)
    else:
        count = axis.max_count
    return count * estimate_subtree_nodes(dtd, axis.label)


def _projection_events(
    dtd: Optional[object], node: ProjectionNode, element_type: str, cardinality: float
) -> float:
    total = 0.0
    for label, child in sorted(node.children.items()):
        count = cardinality * estimate_count(dtd, element_type, label)
        if child.keep_subtree:
            total += count * EVENTS_PER_NODE * estimate_subtree_nodes(dtd, label)
        else:
            total += count * 2.0  # start + end tag of the matched element
            total += _projection_events(dtd, child, label, count)
    return total


def estimate_cost(
    entry: "CompiledQueryPlan", analysis: Optional[PlanBufferAnalysis] = None
) -> CostEstimate:
    """Predict the per-document cost of ``entry``.

    ``analysis`` may be passed when the caller already classified the
    plan (``repro explain`` does, to print both from one walk).
    """
    dtd = entry.plan.dtd
    if analysis is None:
        analysis = classify_plan(entry.plan)
    document_events = estimate_document_events(dtd)

    projection = projection_paths(entry.optimized.parsed)
    if projection.keep_subtree:
        events_routed = document_events
    else:
        events_routed = 2.0 + _projection_events(dtd, projection, "#document", 1.0)
    events_routed = min(events_routed, document_events)

    items_buffered = 0.0
    condition_arity = 0
    for handler in analysis.handlers:
        condition_arity += len(handler.past_labels)
        per_firing = sum(_axis_items(dtd, axis) for axis in handler.axes)
        items_buffered += handler.cardinality * per_firing

    report = entry.optimized.scheduling_report
    handler_count = (
        report.streaming_handlers + report.buffered_handlers + report.copy_handlers
    )
    per_event_cost = 1.0 + 0.15 * handler_count + 0.05 * condition_arity

    score = events_routed * per_event_cost + BUFFER_ITEM_WEIGHT * items_buffered
    return CostEstimate(
        events_routed=events_routed,
        items_buffered=items_buffered,
        per_event_cost=per_event_cost,
        document_events=document_events,
        score=score,
    )


def static_cost(entry: "CompiledQueryPlan") -> float:
    """Memoized cost score of ``entry`` (the admission-pricing hook).

    Cached on the entry like ``structure_key``: plans are immutable once
    compiled and shared across registrations, so the analysis runs once.
    """
    cached = entry.__dict__.get("_static_cost")
    if cached is not None:
        return float(cached)
    score = estimate_cost(entry).score
    entry.__dict__["_static_cost"] = score
    return score


def apply_observations(
    estimate: CostEstimate, observations: "Optional[PlanObservations]"
) -> CostEstimate:
    """Recalibrate ``estimate`` with observed per-pass metrics.

    Replaces the modeled events-routed figure with the observed mean and
    rescales the score accordingly; the static buffered-items term is
    kept (observations do not break it out per structure).  Returns the
    estimate unchanged when there are no observations.
    """
    if observations is None or observations.passes <= 0:
        return estimate
    observed_events = observations.events_routed / observations.passes
    score = (
        observed_events * estimate.per_event_cost
        + BUFFER_ITEM_WEIGHT * estimate.items_buffered
    )
    return replace(
        estimate,
        events_routed=observed_events,
        score=score,
        observed_passes=observations.passes,
    )
