"""Execution-mode selection policy (``--execution auto``).

Maps predicted fleet cost × document size × document count × available
cores to one of the existing serving configurations:

* ``inline`` scheduler, no pool — the fastest single-core path (bench S2)
  and the only sensible choice for a single document or a single core;
* ``threads`` pool — moderate multi-document workloads on multi-core
  hosts: shards overlap ingestion and isolate per-document faults while
  plans stay shared in-process;
* ``processes`` pool — CPU-bound fleets (high predicted per-document
  cost) on multi-core hosts, where the GIL would serialize thread shards
  (bench S5).

The policy is deliberately a handful of thresholds over the cost model,
not a learned model: every decision carries its reasons so ``repro
explain`` can print them and bench S8 can audit them against measured
throughput.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.analysis.query.cost import BYTES_PER_EVENT, CostEstimate

#: Assumed document size when the caller cannot stat the input (stdin).
DEFAULT_DOCUMENT_BYTES = 1 << 20
#: Total predicted score across the whole stream above which the fleet
#: counts as CPU-bound and is worth shipping to worker processes.
PROCESS_WORK_CUTOFF = 50_000_000.0
#: Per-document predicted score below which pooling of any kind is just
#: handoff overhead.
POOL_WORK_CUTOFF = 50_000.0
#: Worker-count caps per backend (matching the benched configurations).
MAX_PROCESS_WORKERS = 8
MAX_THREAD_WORKERS = 4


@dataclass(frozen=True)
class ModeDecision:
    """A resolved execution configuration plus the policy's reasoning."""

    execution: str  # "inline" | "threads" | "async"
    backend: str  # "threads" | "processes"
    workers: Optional[int]  # None = no pool, serve in the driver
    reasons: Tuple[str, ...]

    @property
    def pooled(self) -> bool:
        return self.workers is not None

    def describe(self) -> str:
        workers = str(self.workers) if self.workers is not None else "none"
        return "execution={0} backend={1} workers={2}".format(
            self.execution, self.backend, workers
        )


def select_mode(
    costs: Sequence[CostEstimate],
    *,
    document_bytes: Optional[int] = None,
    document_count: int = 1,
    cpu_count: Optional[int] = None,
) -> ModeDecision:
    """Pick an execution configuration for a fleet of compiled queries.

    ``costs`` holds one estimate per registered query (duplicates fine —
    structural dedup happens below this layer).  ``document_bytes`` is
    the typical input size (``None`` = unknown, assume 1 MiB) and
    ``document_count`` how many documents the pass stream will serve.
    """
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    size = document_bytes if document_bytes is not None else DEFAULT_DOCUMENT_BYTES
    document_events = max(float(size) / BYTES_PER_EVENT, 1.0)
    per_document = sum(cost.cost_per_event for cost in costs) * document_events
    total = per_document * max(document_count, 1)
    reasons = [
        "fleet of {0} queries: predicted ~{1:.0f} cost units per {2}-byte document"
        " ({3:.0f} total over {4} document(s), {5} core(s))".format(
            len(costs), per_document, size, total, document_count, cpus
        )
    ]

    if document_count <= 1:
        reasons.append("single document: sharding has nothing to parallelize")
        return _inline(reasons)
    if cpus < 2:
        reasons.append("single usable core: a pool only adds handoff overhead")
        return _inline(reasons)
    if per_document < POOL_WORK_CUTOFF:
        reasons.append(
            "light documents (<{0:.0f} units each): pool handoff would dominate".format(
                POOL_WORK_CUTOFF
            )
        )
        return _inline(reasons)
    if total >= PROCESS_WORK_CUTOFF:
        workers = min(cpus, document_count, MAX_PROCESS_WORKERS)
        reasons.append(
            "CPU-bound stream (>= {0:.0f} units): process workers break the GIL cap".format(
                PROCESS_WORK_CUTOFF
            )
        )
        return ModeDecision("inline", "processes", workers, tuple(reasons))
    workers = min(cpus, document_count, MAX_THREAD_WORKERS)
    reasons.append(
        "multi-document, multi-core, moderate cost: thread shards overlap"
        " ingestion and isolate per-document faults"
    )
    return ModeDecision("inline", "threads", workers, tuple(reasons))


def _inline(reasons: "list[str]") -> ModeDecision:
    reasons.append("inline scheduler: no per-query worker handoff (bench S2)")
    return ModeDecision("inline", "threads", None, tuple(reasons))
