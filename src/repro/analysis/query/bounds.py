"""Buffer-bound classification of compiled plans.

The scheduler already *decides* what buffers (``on-first`` handlers
wrapping buffered expressions); this module *quantifies* those decisions
against the DTD.  Every buffered handler gets a degree of unboundedness —
how many nested repeating axes feed its buffer — and a class:

``CONST``
    degree 0: a bounded number of items with statically bounded subtrees.
    Peak buffer size is independent of document size.
``FANOUT``
    degree 1: bounded by exactly one repeating axis (``*``/``+``).  The
    buffer grows linearly with the matching elements under one stream
    instance.
``DOC``
    degree ≥ 2, recursion, ``ANY`` content, or no DTD at all: the buffer
    can grow with the whole document.

Buffers live per *instance* of their enclosing stream variable and are
released when the instance closes, so the degree measures per-instance
peak growth — the quantity the soundness property test pins down
(a ``CONST`` query's ``peak_buffer_bytes`` stays flat as documents grow).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Set, Tuple

from repro.dtd.automaton import axis_max_count, subtree_growth_degree
from repro.dtd.model import INFINITY
from repro.runtime.plan import (
    BufferedEvalOp,
    IfOp,
    OnFirstHandlerOp,
    OnHandlerOp,
    PhysicalPlan,
    PlanOp,
    ProcessStreamOp,
)
from repro.xquery.analysis import WHOLE_SUBTREE, child_label_dependencies
from repro.xquery.ast import XQueryExpr

#: Buffer classes, from best to worst.
CONST = "CONST"
FANOUT = "FANOUT"
DOC = "DOC"

_CLASS_ORDER = {CONST: 0, FANOUT: 1, DOC: 2}

#: Point estimate for one repeating (``*``/``+``) axis when a number is
#: needed (cardinality, cost).  Deliberately modest: ranking queries
#: against each other matters more than absolute accuracy, and observed
#: pass metrics can recalibrate the totals later.
REPEAT_ESTIMATE = 8.0


def estimate_count(dtd: Optional[object], element_type: str, label: str) -> float:
    """Point estimate of ``label`` children per ``element_type`` instance.

    The exact automaton maximum when bounded; :data:`REPEAT_ESTIMATE` for
    repeating axes or when no DTD is available.
    """
    if dtd is None:
        return REPEAT_ESTIMATE
    maximum = axis_max_count(dtd, element_type, label)
    if maximum >= INFINITY:
        return REPEAT_ESTIMATE
    return maximum


@dataclass(frozen=True)
class BufferedAxis:
    """One buffered dependency: child ``label`` read under ``element_type``.

    ``label`` may be :data:`~repro.xquery.analysis.WHOLE_SUBTREE` when the
    handler copies the whole stream-variable subtree; ``max_count`` is then
    1 (one subtree per instance) and ``subtree_degree`` carries all growth.
    """

    element_type: str
    label: str
    max_count: float  # per-instance occurrences; INFINITY = repeating axis
    subtree_degree: float  # growth degree of each buffered item's subtree

    @property
    def degree(self) -> float:
        """Nested unbounded axes this dependency contributes."""
        axis = 0.0 if self.max_count < INFINITY else 1.0
        return axis + self.subtree_degree

    def reason(self) -> str:
        """One-line human explanation of this axis's contribution."""
        if self.label == WHOLE_SUBTREE:
            head = "whole {0} subtree per instance".format(self.element_type)
        elif self.max_count >= INFINITY:
            head = "{0}* repeats under {1}".format(self.label, self.element_type)
        else:
            head = "<={0} {1} per {2}".format(
                int(self.max_count), self.label, self.element_type
            )
        if self.subtree_degree >= INFINITY:
            tail = "recursive or unbounded item subtree"
        elif self.subtree_degree > 0:
            tail = "item subtree grows (degree {0})".format(int(self.subtree_degree))
        else:
            tail = "bounded item subtree"
        return "{0}; {1}".format(head, tail)


@dataclass(frozen=True)
class HandlerBufferBound:
    """Classification of one buffered (``on-first``) handler."""

    path: str  # "/"-joined child indices from the plan root (walk order)
    stream_var: str  # innermost enclosing stream variable
    element_type: str  # ... and its element type
    past_labels: Tuple[str, ...]  # the on-first condition, sorted
    axes: Tuple[BufferedAxis, ...]
    degree: float
    buffer_class: str
    cardinality: float  # estimated firings per document
    reasons: Tuple[str, ...]


@dataclass(frozen=True)
class PlanBufferAnalysis:
    """All buffered handlers of one plan, plus the worst class."""

    handlers: Tuple[HandlerBufferBound, ...]
    plan_class: Optional[str]  # None when nothing buffers (fully streaming)
    max_degree: float

    def by_path(self) -> "dict[str, HandlerBufferBound]":
        return {handler.path: handler for handler in self.handlers}


def classify_degree(degree: float) -> str:
    """Map a growth degree to a buffer class."""
    if degree <= 0:
        return CONST
    if degree <= 1:
        return FANOUT
    return DOC


def buffered_expressions(op: PlanOp) -> Iterator[XQueryExpr]:
    """XQuery expressions evaluated from buffers inside ``op``.

    Stops at nested ``process-stream`` boundaries: anything below those
    re-streams and is classified through its own handlers.
    """
    if isinstance(op, ProcessStreamOp):
        return
    if isinstance(op, BufferedEvalOp):
        yield op.expr
    if isinstance(op, IfOp):
        yield op.condition
    for child in op.children():
        for expr in buffered_expressions(child):
            yield expr


def _classify_handler(
    dtd: Optional[object],
    handler: OnFirstHandlerOp,
    scopes: Tuple[Tuple[str, str], ...],
    cardinality: float,
    path: str,
) -> HandlerBufferBound:
    exprs = list(buffered_expressions(handler.body))
    axes: List[BufferedAxis] = []
    for var, element_type in scopes:
        deps: Set[str] = set()
        for expr in exprs:
            deps |= child_label_dependencies(expr, var)
        for label in sorted(deps):
            axes.append(_axis(dtd, element_type, label))
    stream_var, element_type = scopes[-1] if scopes else ("$?", "#document")
    degree = max((axis.degree for axis in axes), default=0.0)
    if axes:
        reasons = tuple(axis.reason() for axis in axes)
        if dtd is None:
            reasons = reasons + ("no DTD: buffered axes assumed unbounded",)
    else:
        reasons = ("buffers no per-instance stream data",)
    return HandlerBufferBound(
        path=path,
        stream_var=stream_var,
        element_type=element_type,
        past_labels=tuple(sorted(handler.labels)),
        axes=tuple(axes),
        degree=degree,
        buffer_class=classify_degree(degree),
        cardinality=cardinality,
        reasons=reasons,
    )


def _axis(dtd: Optional[object], element_type: str, label: str) -> BufferedAxis:
    if dtd is None:
        return BufferedAxis(element_type, label, INFINITY, INFINITY)
    if label == WHOLE_SUBTREE:
        return BufferedAxis(
            element_type, label, 1.0, subtree_growth_degree(dtd, element_type)
        )
    return BufferedAxis(
        element_type,
        label,
        axis_max_count(dtd, element_type, label),
        subtree_growth_degree(dtd, label),
    )


def classify_plan(plan: PhysicalPlan) -> PlanBufferAnalysis:
    """Classify every buffered handler of ``plan`` against its DTD.

    Handler paths follow the plan tree's ``children()`` ordering (the
    same walk :func:`repro.analysis.query.explain.render_plan` uses), so
    the renderer can annotate operators by path.
    """
    dtd = plan.dtd
    found: List[HandlerBufferBound] = []

    def visit(
        op: PlanOp,
        scopes: Tuple[Tuple[str, str], ...],
        cardinality: float,
        path: str,
    ) -> None:
        if isinstance(op, ProcessStreamOp):
            scopes = scopes + ((op.var, op.element_type),)
        elif isinstance(op, OnHandlerOp) and scopes:
            _, element_type = scopes[-1]
            cardinality = cardinality * estimate_count(dtd, element_type, op.label)
        elif isinstance(op, OnFirstHandlerOp):
            found.append(_classify_handler(dtd, op, scopes, cardinality, path))
        for index, child in enumerate(op.children()):
            visit(child, scopes, cardinality, "{0}/{1}".format(path, index))

    visit(plan.root, (), 1.0, "0")
    max_degree = max((handler.degree for handler in found), default=0.0)
    plan_class: Optional[str] = None
    if found:
        plan_class = max(
            (handler.buffer_class for handler in found),
            key=lambda name: _CLASS_ORDER[name],
        )
    return PlanBufferAnalysis(
        handlers=tuple(found), plan_class=plan_class, max_degree=max_degree
    )
