"""Static query analyzer: buffer bounds, cost model, and mode selection.

This package is the *query* side of the static-analysis suite (the
sibling checkers in :mod:`repro.analysis` lint the codebase itself).  It
runs at compile time over the optimized physical plan plus the DTD and
answers three questions the paper's whole approach revolves around:

1. **How much does each buffered region hold?**  :mod:`.bounds` lifts the
   per-label occurrence bounds of the content-model automata
   (:meth:`repro.dtd.automaton.ContentModelAutomaton.occurrence_bounds`)
   over the element graph and classifies every ``on-first`` handler the
   scheduler emitted as ``CONST`` (statically bounded), ``FANOUT`` (one
   repeating axis), or ``DOC`` (unbounded or recursive).
2. **How expensive is the query per document?**  :mod:`.cost` folds
   automaton fan-out with the plan's projection paths and condition arity
   into a predicted events-routed / items-buffered score, optionally
   calibrated by observed pass metrics persisted with the plan-cache
   snapshot (:class:`repro.runtime.plan_cache.PlanObservations`).
3. **How should the fleet run?**  :mod:`.modes` maps predicted cost ×
   document size × fleet shape to ``inline | threads | processes`` plus a
   worker count — the policy behind ``--execution auto``.

:mod:`.explain` renders all three for ``repro explain``.
"""

from repro.analysis.query.bounds import (
    CONST,
    DOC,
    FANOUT,
    REPEAT_ESTIMATE,
    BufferedAxis,
    HandlerBufferBound,
    PlanBufferAnalysis,
    classify_plan,
    estimate_count,
)
from repro.analysis.query.cost import (
    CostEstimate,
    apply_observations,
    estimate_cost,
    estimate_document_events,
    estimate_subtree_nodes,
    static_cost,
)
from repro.analysis.query.explain import explain_compiled, render_cost, render_mode, render_plan
from repro.analysis.query.modes import ModeDecision, select_mode

__all__ = [
    "CONST",
    "DOC",
    "FANOUT",
    "REPEAT_ESTIMATE",
    "BufferedAxis",
    "HandlerBufferBound",
    "PlanBufferAnalysis",
    "classify_plan",
    "estimate_count",
    "CostEstimate",
    "apply_observations",
    "estimate_cost",
    "estimate_document_events",
    "estimate_subtree_nodes",
    "static_cost",
    "ModeDecision",
    "select_mode",
    "explain_compiled",
    "render_cost",
    "render_mode",
    "render_plan",
]
