"""Shared core of the in-repo static-analysis suite.

The suite mirrors the paper's own method — static analysis ahead of
execution — but points it at the *implementation*: the lock-heavy serving
stack, the per-event routing hot loop, the asyncio front end, and the
pickled plan artifacts.  Everything here is stdlib-only (:mod:`ast` +
:mod:`tokenize`) so ``repro lint`` runs in any environment the tests run
in.

Building blocks
---------------

* :class:`Finding` — one diagnostic: ``code`` (stable, documented),
  ``path`` (relative to the scanned root), ``line``, ``message``.
* :class:`SourceFile` — a parsed module: source text, AST, and the
  per-line comment map the annotation syntax is read from.
* :class:`Checker` — base class; per-module :meth:`Checker.check` plus an
  optional cross-module :meth:`Checker.finalize` (used by the
  pickle-safety checker, which needs the whole class graph).
* Baseline files — JSON lists of finding fingerprints ``(code, path,
  message)``; line numbers are deliberately not part of the fingerprint
  so unrelated edits do not invalidate a baseline.

Annotation syntax (written in source comments, read by the checkers):

``# guarded-by: <lock>``
    Declares the field assigned on this line as guarded by ``self.<lock>``.
``# unguarded: <reason>``
    Suppresses lock-discipline findings on this line (or, on a ``def``
    line, for the whole method).  The reason is mandatory.
``# hot-loop``
    Marks a function for the hot-loop purity checker.
``# hot-loop-ok: <reason>``
    Suppresses hot-loop findings on this line.  The reason is mandatory.
``# async-ok: <reason>``
    Suppresses async-blocking findings on this line.  The reason is
    mandatory.
``# pickle-ok: <reason>``
    Suppresses pickle-safety findings for the class defined on this line.
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Fingerprint of a finding as stored in baseline files (line-independent).
Fingerprint = Tuple[str, str, str]


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a checker."""

    code: str
    path: str
    line: int
    message: str
    checker: str

    @property
    def fingerprint(self) -> Fingerprint:
        return (self.code, self.path, self.message)

    def sort_key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.code)

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message} [{self.checker}]"


_ANNOTATION = re.compile(r"#\s*(?P<name>[a-z][a-z0-9-]*)\b(?::\s*(?P<value>.*?))?\s*(?:#|$)")


class SourceFile:
    """A parsed Python module plus its per-line comment map."""

    def __init__(self, path: str, relpath: str, source: str, tree: ast.Module):
        self.abspath = path
        self.path = relpath
        self.source = source
        self.tree = tree
        self.comments: Dict[int, str] = {}
        #: Lines that hold *only* a comment (no code before the ``#``).
        self.own_line_comments: Set[int] = set()
        lines = source.splitlines()
        try:
            for token in tokenize.generate_tokens(io.StringIO(source).readline):
                if token.type == tokenize.COMMENT:
                    row, col = token.start
                    self.comments[row] = token.string
                    if row <= len(lines) and not lines[row - 1][:col].strip():
                        self.own_line_comments.add(row)
        except tokenize.TokenError:
            # ast.parse accepted the file; a tokenize hiccup only costs
            # annotations, not the analysis itself.
            pass

    @classmethod
    def parse(cls, path: str, relpath: str) -> "SourceFile":
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        tree = ast.parse(source, filename=path)
        return cls(path, relpath, source, tree)

    def annotation(self, line: int, name: str) -> Optional[str]:
        """The value of annotation ``name`` on ``line``.

        Returns ``None`` when the annotation is absent, ``""`` for a bare
        marker (``# hot-loop``), and the reason text otherwise.
        """
        comment = self.comments.get(line)
        if comment is None:
            return None
        for match in _ANNOTATION.finditer(comment):
            if match.group("name") == name:
                return (match.group("value") or "").strip()
        return None

    def annotation_near(self, line: int, name: str) -> Optional[str]:
        """Like :meth:`annotation`, also accepting a comment-only line
        directly above (for statements too long to carry a trailing
        comment).  A *trailing* comment never leaks onto the next line."""
        value = self.annotation(line, name)
        if value is None and (line - 1) in self.own_line_comments:
            value = self.annotation(line - 1, name)
        return value

    def has_marker(self, line: int, name: str) -> bool:
        return self.annotation(line, name) is not None


class Checker:
    """Base class for the four project checkers."""

    name: str = ""
    #: code -> one-line description (documented in docs/ARCHITECTURE.md).
    codes: Dict[str, str] = {}

    def check(self, module: SourceFile) -> List[Finding]:
        raise NotImplementedError

    def finalize(self) -> List[Finding]:
        """Cross-module findings, emitted after every module was checked."""
        return []

    def finding(self, code: str, module_path: str, line: int, message: str) -> Finding:
        if code not in self.codes:
            raise ValueError(f"{self.name}: unknown finding code {code}")
        return Finding(code=code, path=module_path, line=line, message=message, checker=self.name)


def iter_python_files(root: str) -> Iterator[Tuple[str, str]]:
    """Yield ``(abspath, relpath)`` for every ``.py`` file under ``root``.

    ``root`` may also be a single file, in which case ``relpath`` is its
    basename.  Relative paths always use ``/`` separators so baselines
    are portable across platforms.
    """
    if os.path.isfile(root):
        yield root, os.path.basename(root)
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            abspath = os.path.join(dirpath, filename)
            rel = os.path.relpath(abspath, root).replace(os.sep, "/")
            yield abspath, rel


def run_checkers(
    paths: Sequence[str], checkers: Sequence[Checker]
) -> Tuple[List[Finding], List[str]]:
    """Run ``checkers`` over every Python file under ``paths``.

    Returns the sorted findings plus the list of files that failed to
    parse (reported, not fatal: a syntax error elsewhere should not hide
    the findings in files that do parse).
    """
    findings: List[Finding] = []
    errors: List[str] = []
    for root in paths:
        for abspath, relpath in iter_python_files(root):
            try:
                module = SourceFile.parse(abspath, relpath)
            except (SyntaxError, UnicodeDecodeError) as exc:
                errors.append(f"{relpath}: {exc}")
                continue
            for checker in checkers:
                findings.extend(checker.check(module))
    for checker in checkers:
        findings.extend(checker.finalize())
    findings.sort(key=Finding.sort_key)
    return findings, errors


# ------------------------------------------------------------------ baseline

BASELINE_VERSION = 1


def load_baseline(path: str) -> Set[Fingerprint]:
    """Load the fingerprints of a committed baseline file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise ValueError(f"{path}: not a version-{BASELINE_VERSION} lint baseline")
    fingerprints: Set[Fingerprint] = set()
    for entry in payload.get("findings", []):
        fingerprints.add((str(entry["code"]), str(entry["path"]), str(entry["message"])))
    return fingerprints


def write_baseline(findings: Iterable[Finding], path: str) -> None:
    """Write ``findings`` as a baseline file (suppressing them in future runs)."""
    entries = [
        {"code": f.code, "path": f.path, "message": f.message}
        for f in sorted(findings, key=Finding.sort_key)
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def apply_baseline(
    findings: Sequence[Finding], baseline: Set[Fingerprint]
) -> Tuple[List[Finding], int]:
    """Split ``findings`` into (new, suppressed-count) against ``baseline``."""
    fresh = [f for f in findings if f.fingerprint not in baseline]
    return fresh, len(findings) - len(fresh)
