"""In-repo static analysis: the ``repro lint`` suite.

The paper's contribution is static analysis of queries before any data
flows; this package applies the same discipline to the reproduction's
own implementation.  Four project-specific checkers run over
``src/repro`` (all stdlib, :mod:`ast`-based — see the module docstrings
for the rule details and finding codes):

* :class:`~repro.analysis.lock_discipline.LockDisciplineChecker`
  (``LD0xx``) — guarded-by lock discipline for the serving stack.
* :class:`~repro.analysis.hot_loop.HotLoopChecker` (``HL0xx``) —
  allocation/lookup/isinstance/try purity of ``# hot-loop`` functions.
* :class:`~repro.analysis.async_blocking.AsyncBlockingChecker`
  (``AB0xx``) — no blocking calls inside ``async def``.
* :class:`~repro.analysis.pickle_safety.PickleSafetyChecker`
  (``PS0xx``) — every type reachable from the shipped plan pickles.

Entry points: :func:`run_lint` (programmatic), ``repro lint`` (CLI),
both honouring the committed baseline (``scripts/lint_baseline.json``).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.async_blocking import AsyncBlockingChecker
from repro.analysis.core import (
    BASELINE_VERSION,
    Checker,
    Finding,
    Fingerprint,
    SourceFile,
    apply_baseline,
    iter_python_files,
    load_baseline,
    run_checkers,
    write_baseline,
)
from repro.analysis.hot_loop import HotLoopChecker
from repro.analysis.lock_discipline import LockDisciplineChecker
from repro.analysis.pickle_safety import PickleSafetyChecker

__all__ = [
    "AsyncBlockingChecker",
    "BASELINE_VERSION",
    "Checker",
    "Finding",
    "Fingerprint",
    "HotLoopChecker",
    "LintResult",
    "LockDisciplineChecker",
    "PickleSafetyChecker",
    "SourceFile",
    "all_codes",
    "apply_baseline",
    "default_checkers",
    "default_lint_root",
    "iter_python_files",
    "load_baseline",
    "render_json",
    "render_text",
    "run_checkers",
    "run_lint",
    "write_baseline",
]


def default_checkers() -> List[Checker]:
    """Fresh instances of the four project checkers (single-run objects)."""
    return [
        LockDisciplineChecker(),
        HotLoopChecker(),
        AsyncBlockingChecker(),
        PickleSafetyChecker(),
    ]


def all_codes() -> Dict[str, str]:
    """Every documented finding code mapped to its one-line description."""
    codes: Dict[str, str] = {}
    for checker in default_checkers():
        codes.update(checker.codes)
    return codes


def default_lint_root() -> str:
    """The installed ``repro`` package directory (what ``repro lint`` scans)."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class LintResult:
    """Outcome of one lint run: findings split against the baseline."""

    def __init__(
        self,
        findings: List[Finding],
        suppressed: int,
        errors: List[str],
    ) -> None:
        self.findings = findings
        self.suppressed = suppressed
        self.errors = errors

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def failing(self, fail_on: Optional[Set[str]]) -> List[Finding]:
        """The findings that should fail the run (``None`` means all)."""
        if fail_on is None:
            return list(self.findings)
        return [f for f in self.findings if f.code in fail_on]


def run_lint(
    paths: Sequence[str],
    baseline_path: Optional[str] = None,
    checkers: Optional[Sequence[Checker]] = None,
) -> LintResult:
    """Run the suite over ``paths``, subtracting the baseline if given."""
    findings, errors = run_checkers(list(paths), list(checkers or default_checkers()))
    suppressed = 0
    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
        findings, suppressed = apply_baseline(findings, baseline)
    return LintResult(findings, suppressed, errors)


def render_text(result: LintResult) -> str:
    """Human-readable report, one finding per line plus a summary."""
    lines = [finding.render() for finding in result.findings]
    for error in result.errors:
        lines.append(f"error: {error}")
    summary = f"{len(result.findings)} finding(s)"
    if result.suppressed:
        summary += f", {result.suppressed} baselined"
    if result.errors:
        summary += f", {len(result.errors)} file(s) failed to parse"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable key order)."""
    payload = {
        "findings": [
            {
                "code": f.code,
                "path": f.path,
                "line": f.line,
                "message": f.message,
                "checker": f.checker,
            }
            for f in result.findings
        ],
        "suppressed": result.suppressed,
        "errors": list(result.errors),
        "summary": {"findings": len(result.findings)},
    }
    return json.dumps(payload, indent=2, sort_keys=True)
