"""In-repo static analysis: the ``repro lint`` suite.

The paper's contribution is static analysis of queries before any data
flows; this package applies the same discipline to the reproduction's
own implementation.  Four project-specific checkers run over
``src/repro`` (all stdlib, :mod:`ast`-based — see the module docstrings
for the rule details and finding codes):

* :class:`~repro.analysis.lock_discipline.LockDisciplineChecker`
  (``LD0xx``) — guarded-by lock discipline for the serving stack.
* :class:`~repro.analysis.hot_loop.HotLoopChecker` (``HL0xx``) —
  allocation/lookup/isinstance/try purity of ``# hot-loop`` functions.
* :class:`~repro.analysis.async_blocking.AsyncBlockingChecker`
  (``AB0xx``) — no blocking calls inside ``async def``.
* :class:`~repro.analysis.pickle_safety.PickleSafetyChecker`
  (``PS0xx``) — every type reachable from the shipped plan pickles.

Entry points: :func:`run_lint` (programmatic), ``repro lint`` (CLI),
both honouring the committed baseline (``scripts/lint_baseline.json``).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.async_blocking import AsyncBlockingChecker
from repro.analysis.core import (
    BASELINE_VERSION,
    Checker,
    Finding,
    Fingerprint,
    SourceFile,
    apply_baseline,
    iter_python_files,
    load_baseline,
    run_checkers,
    write_baseline,
)
from repro.analysis.hot_loop import HotLoopChecker
from repro.analysis.lock_discipline import LockDisciplineChecker
from repro.analysis.pickle_safety import PickleSafetyChecker

__all__ = [
    "AsyncBlockingChecker",
    "BASELINE_VERSION",
    "Checker",
    "Finding",
    "Fingerprint",
    "HotLoopChecker",
    "LintResult",
    "LockDisciplineChecker",
    "PickleSafetyChecker",
    "SourceFile",
    "all_codes",
    "apply_baseline",
    "default_checkers",
    "default_lint_root",
    "iter_python_files",
    "load_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "run_checkers",
    "run_lint",
    "write_baseline",
]


def default_checkers() -> List[Checker]:
    """Fresh instances of the four project checkers (single-run objects)."""
    return [
        LockDisciplineChecker(),
        HotLoopChecker(),
        AsyncBlockingChecker(),
        PickleSafetyChecker(),
    ]


def all_codes() -> Dict[str, str]:
    """Every documented finding code mapped to its one-line description."""
    codes: Dict[str, str] = {}
    for checker in default_checkers():
        codes.update(checker.codes)
    return codes


def default_lint_root() -> str:
    """The installed ``repro`` package directory (what ``repro lint`` scans)."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class LintResult:
    """Outcome of one lint run: findings split against the baseline.

    ``stale`` lists baseline fingerprints that no current finding matches
    — dead suppressions.  A fixed violation must leave the baseline too,
    or the suppression would silently swallow a future regression with
    the same fingerprint (``repro lint --check-baseline`` fails on them).
    """

    def __init__(
        self,
        findings: List[Finding],
        suppressed: int,
        errors: List[str],
        stale: Optional[List[Fingerprint]] = None,
    ) -> None:
        self.findings = findings
        self.suppressed = suppressed
        self.errors = errors
        self.stale = list(stale or [])

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def failing(self, fail_on: Optional[Set[str]]) -> List[Finding]:
        """The findings that should fail the run (``None`` means all)."""
        if fail_on is None:
            return list(self.findings)
        return [f for f in self.findings if f.code in fail_on]


def run_lint(
    paths: Sequence[str],
    baseline_path: Optional[str] = None,
    checkers: Optional[Sequence[Checker]] = None,
) -> LintResult:
    """Run the suite over ``paths``, subtracting the baseline if given."""
    findings, errors = run_checkers(list(paths), list(checkers or default_checkers()))
    suppressed = 0
    stale: List[Fingerprint] = []
    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
        fired = {finding.fingerprint for finding in findings}
        stale = sorted(baseline - fired)
        findings, suppressed = apply_baseline(findings, baseline)
    return LintResult(findings, suppressed, errors, stale=stale)


def render_text(result: LintResult) -> str:
    """Human-readable report, one finding per line plus a summary."""
    lines = [finding.render() for finding in result.findings]
    for error in result.errors:
        lines.append(f"error: {error}")
    summary = f"{len(result.findings)} finding(s)"
    if result.suppressed:
        summary += f", {result.suppressed} baselined"
    if result.errors:
        summary += f", {len(result.errors)} file(s) failed to parse"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable key order)."""
    payload = {
        "findings": [
            {
                "code": f.code,
                "path": f.path,
                "line": f.line,
                "message": f.message,
                "checker": f.checker,
            }
            for f in result.findings
        ],
        "suppressed": result.suppressed,
        "errors": list(result.errors),
        "summary": {"findings": len(result.findings)},
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 report (GitHub code scanning's upload format).

    One run with one driver (``repro-lint``); every documented finding
    code becomes a rule so annotations link back to rule descriptions.
    ``partialFingerprints`` carries the same stable fingerprint the
    baseline machinery uses, letting code scanning track a finding across
    commits exactly like the baseline does.  File paths are emitted
    repo-relative when possible (uploads resolve them against the
    checkout root).
    """
    rules = [
        {
            "id": code,
            "shortDescription": {"text": description},
            "defaultConfiguration": {"level": "warning"},
        }
        for code, description in sorted(all_codes().items())
    ]
    rule_index = {rule["id"]: index for index, rule in enumerate(rules)}
    results = []
    for finding in result.findings:
        path = os.path.relpath(finding.path, os.getcwd())
        if path.startswith(".."):
            path = finding.path
        results.append(
            {
                "ruleId": finding.code,
                "ruleIndex": rule_index.get(finding.code, -1),
                "level": "warning",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": path.replace(os.sep, "/"),
                                "uriBaseId": "%SRCROOT%",
                            },
                            "region": {"startLine": max(finding.line, 1)},
                        }
                    }
                ],
                "partialFingerprints": {
                    "reproLint/v1": "|".join(finding.fingerprint)
                },
            }
        )
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
