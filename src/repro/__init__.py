"""FluXQuery reproduction: an optimizing XQuery processor for streaming XML.

This package reproduces the system described in

    Koch, Scherzinger, Schweikardt, Stegmaier:
    "FluXQuery: An Optimizing XQuery Processor for Streaming XML Data",
    VLDB 2004 (demonstration),

together with the scheduling and buffer-minimization machinery of its
companion paper.  See ``DESIGN.md`` for the system inventory and
``EXPERIMENTS.md`` for the reproduced evaluation.

Quickstart
----------

>>> from repro import FluxEngine
>>> from repro.workloads import BIB_DTD_STRONG, generate_bibliography, get_query
>>> engine = FluxEngine(BIB_DTD_STRONG)
>>> document = generate_bibliography(num_books=5)
>>> result = engine.execute(get_query("BIB-Q3").xquery, document)
>>> result.peak_buffer_bytes
0

The three engines (``FluxEngine``, ``ProjectionEngine``, ``DomEngine``) share
one interface; the optimizer pipeline (``compile_xquery``) can also be used
on its own to inspect the generated FluX queries and buffer requirements.
"""

from repro.core.optimizer import OptimizedQuery, OptimizerPipeline, compile_xquery
from repro.dtd.parser import parse_dtd
from repro.dtd.schema import DTD
from repro.engines.base import Engine, QueryResult
from repro.engines.dom_engine import DomEngine
from repro.engines.flux_engine import FluxEngine
from repro.engines.projection_engine import ProjectionEngine
from repro.errors import (
    DTDSyntaxError,
    EvaluationError,
    ReproError,
    UnsafeFluxQueryError,
    UnsupportedFeatureError,
    WorkerCrashError,
    XMLSyntaxError,
    XMLValidationError,
    XQuerySyntaxError,
)
from repro.service import (
    AsyncQueryService,
    AsyncServicePool,
    FileDocument,
    PlanCache,
    ProcessServicePool,
    QueryService,
    ServicePool,
)
from repro.xquery.parser import parse_xquery

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "FluxEngine",
    "DomEngine",
    "ProjectionEngine",
    "Engine",
    "QueryResult",
    "OptimizerPipeline",
    "OptimizedQuery",
    "QueryService",
    "ServicePool",
    "ProcessServicePool",
    "FileDocument",
    "AsyncQueryService",
    "AsyncServicePool",
    "PlanCache",
    "WorkerCrashError",
    "compile_xquery",
    "parse_xquery",
    "parse_dtd",
    "DTD",
    "ReproError",
    "XMLSyntaxError",
    "XMLValidationError",
    "DTDSyntaxError",
    "XQuerySyntaxError",
    "UnsupportedFeatureError",
    "UnsafeFluxQueryError",
    "EvaluationError",
]
