"""The buffer description forest (BDF).

"The query compiler ... first computes the buffer description forest data
structure, BDF for short, which defines those paths of the input document
which need to be buffered."  (Section 3.2 of the paper.)

Our BDF maps every ``process-stream`` variable of a FluX query to the set of
child labels of that variable that buffered sub-expressions read:

* an ``on-first`` handler body ``for $a in $book/author return ...``
  contributes ``author`` to the entry for ``$book``;
* a whole-subtree dependency (the handler copies ``$book`` itself, or uses a
  descendant/``text()`` step) sets the ``whole_subtree`` flag — the runtime
  then materializes the entire element;
* labels consumed purely by streaming ``on`` handlers contribute nothing,
  which is exactly the saving over projection-style engines (compare
  Marian & Siméon [10]): data that can be processed on the fly is never
  buffered.

The BDF is both a runtime artifact (the compiler attaches each entry to its
``process-stream`` operator) and an analysis result that tests and the
memory model in the benchmarks inspect directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set

from repro.core.flux import (
    FBufferedExpr,
    FIf,
    FluxExpr,
    FluxQuery,
    FProcessStream,
    OnFirstHandler,
    OnHandler,
)
from repro.xquery.analysis import WHOLE_SUBTREE, child_label_dependencies


@dataclass
class BufferSpec:
    """Buffering requirements for one ``process-stream`` variable."""

    var: str
    element_type: str
    labels: Set[str] = field(default_factory=set)
    whole_subtree: bool = False

    def add_dependencies(self, deps: FrozenSet[str]) -> None:
        """Fold a dependency set (possibly containing the whole-subtree
        marker) into this spec."""
        if WHOLE_SUBTREE in deps:
            self.whole_subtree = True
            self.labels.update(label for label in deps if label != WHOLE_SUBTREE)
        else:
            self.labels.update(deps)

    @property
    def buffers_anything(self) -> bool:
        return self.whole_subtree or bool(self.labels)

    def describe(self) -> str:
        if self.whole_subtree:
            return f"${self.var} ({self.element_type}): whole subtree"
        if not self.labels:
            return f"${self.var} ({self.element_type}): nothing"
        return f"${self.var} ({self.element_type}): {', '.join(sorted(self.labels))}"


class BufferDescriptionForest:
    """The collection of :class:`BufferSpec` entries of a FluX query."""

    def __init__(self) -> None:
        self._specs: Dict[str, BufferSpec] = {}

    def spec_for(self, var: str, element_type: str = "") -> BufferSpec:
        """The (created-on-demand) spec for ``$var``."""
        if var not in self._specs:
            self._specs[var] = BufferSpec(var=var, element_type=element_type)
        elif element_type and not self._specs[var].element_type:
            self._specs[var].element_type = element_type
        return self._specs[var]

    def get(self, var: str) -> Optional[BufferSpec]:
        return self._specs.get(var)

    def __iter__(self) -> Iterator[BufferSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def total_buffered_labels(self) -> int:
        """Number of (variable, label) pairs that require buffering."""
        return sum(len(spec.labels) for spec in self._specs.values())

    def buffering_variables(self) -> List[str]:
        """Variables that buffer at least one label (or a whole subtree)."""
        return [spec.var for spec in self._specs.values() if spec.buffers_anything]

    def describe(self) -> str:
        """Multi-line human-readable dump (used by examples and DESIGN docs)."""
        if not self._specs:
            return "(no buffers required)"
        return "\n".join(spec.describe() for spec in self._specs.values())


def build_bdf(query: FluxQuery) -> BufferDescriptionForest:
    """Compute the buffer description forest of a FluX query."""
    forest = BufferDescriptionForest()
    _walk(query.body, forest, active_vars=[])
    return forest


def _walk(expr: FluxExpr, forest: BufferDescriptionForest, active_vars: List[FProcessStream]) -> None:
    if isinstance(expr, FProcessStream):
        forest.spec_for(expr.var, expr.element_type)
        for handler in expr.handlers:
            if isinstance(handler, OnHandler):
                _walk(handler.body, forest, active_vars + [expr])
            else:
                _collect_handler(handler, expr, forest, active_vars)
                _walk(handler.body, forest, active_vars + [expr])
        return
    if isinstance(expr, FIf):
        for stream in active_vars:
            deps = child_label_dependencies(expr.condition, stream.var)
            if deps:
                forest.spec_for(stream.var, stream.element_type).add_dependencies(deps)
    if isinstance(expr, FBufferedExpr):
        for stream in active_vars:
            deps = child_label_dependencies(expr.expr, stream.var)
            if deps:
                forest.spec_for(stream.var, stream.element_type).add_dependencies(deps)
    for child in expr.children():
        _walk(child, forest, active_vars)


def _collect_handler(
    handler: OnFirstHandler,
    stream: FProcessStream,
    forest: BufferDescriptionForest,
    active_vars: List[FProcessStream],
) -> None:
    """Collect the dependencies of an ``on-first`` handler body.

    The body may reference the handler's own stream variable as well as (in
    degenerate schedules) enclosing stream variables; all of them get their
    buffers registered.
    """
    spec = forest.spec_for(stream.var, stream.element_type)
    for target in active_vars + [stream]:
        deps = _flux_dependencies(handler.body, target.var)
        if deps:
            forest.spec_for(target.var, target.element_type).add_dependencies(deps)
    # Ensure the spec exists even if the handler buffers nothing (constants).
    _ = spec


def _flux_dependencies(body: FluxExpr, var: str) -> FrozenSet[str]:
    deps: Set[str] = set()
    _collect_flux_deps(body, var, deps)
    if WHOLE_SUBTREE in deps:
        return frozenset({WHOLE_SUBTREE}) | frozenset(d for d in deps if d != WHOLE_SUBTREE)
    return frozenset(deps)


def _collect_flux_deps(body: FluxExpr, var: str, out: Set[str]) -> None:
    if isinstance(body, FBufferedExpr):
        out.update(child_label_dependencies(body.expr, var))
        return
    if isinstance(body, FIf):
        out.update(child_label_dependencies(body.condition, var))
    from repro.core.flux import FCopyVar  # local import to avoid cycle at module load

    if isinstance(body, FCopyVar) and body.var == var:
        out.add(WHOLE_SUBTREE)
        return
    for child in body.children():
        _collect_flux_deps(child, var, out)
