"""The streamed query evaluator.

"Finally, the physical query plan is executed by the streamed query
evaluator.  The latter uses our validating SAX parser, XSAX ... The streamed
query evaluator processes these events and delivers its output in turn as an
XML stream."  (Section 3.2 of the paper.)

Execution model
---------------

The evaluator interprets the physical plan over the XSAX event stream.  Each
``process-stream`` operator owns a *scope*: the element instance whose
children it is currently consuming.  For every arriving child the scope

1. materializes the child into its buffers when the buffer description
   forest requires it (producing no output),
2. fires pending ``on-first`` handlers, strictly in handler order, that are
   already satisfied and whose output must precede the arriving child's
   output (their index is smaller than the index of the child's ``on``
   handler),
3. dispatches the child to its ``on`` handler, either by streaming (the
   handler body consumes the child's events directly, with constant memory)
   or, when the child also had to be buffered, by replaying the materialized
   subtree,
4. skips the child entirely when neither applies.

When the element closes, the remaining ``on-first`` handlers fire in order —
at that point every ``past`` condition holds trivially.

Output is produced as an event stream and serialized incrementally, so query
results are never materialized.  All memory consumed by buffers flows through
the :class:`~repro.runtime.buffers.BufferManager`, whose peak is the number
the memory benchmarks report.

Push-based execution
--------------------

The evaluator's control flow is written as re-entrant generators: every
method that may consume an input event is a coroutine that *suspends* (with
a plain ``yield``) whenever the event source signals :class:`StarvedInput`.
Over an ordinary pull source (an iterator that blocks or ends) the
generators never suspend, so one-shot :meth:`StreamedEvaluator.run` keeps
the paper's pull semantics unchanged.

:class:`EvaluatorSession` inverts that control so callers can *push* events
instead, giving every compiled plan a ``start() / feed(events) / finish()``
life cycle in one of two execution modes:

* ``"threads"`` — the evaluator runs on a worker thread draining a bounded
  :class:`EventChannel`; ``feed`` hands chunks across with back-pressure.
* ``"inline"`` — no worker thread at all: ``feed`` appends events to an
  in-process buffer and resumes the suspended evaluation generator on the
  *caller's* thread until it starves again.  This removes the per-chunk
  GIL hand-off entirely and is what the multi-query service's round-robin
  scheduler drives.

Both modes are the substrate of the multi-query service (``repro.service``),
where one shared document scan fans out to many concurrently executing
plans.
"""

from __future__ import annotations

import io
import math
import queue
import threading
from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.dtd.schema import DTD
from repro.errors import EvaluationError
from repro.runtime.buffers import BufferManager, ScopeBuffers, StreamScopeNode
from repro.runtime.plan import (
    BufferedEvalOp,
    ConstructorOp,
    CopyVarOp,
    IfOp,
    OnFirstHandlerOp,
    OnHandlerOp,
    PhysicalPlan,
    PlanOp,
    ProcessStreamOp,
    SequenceOp,
    TextOp,
)
from repro.runtime.stats import RuntimeStats
from repro.runtime.xsax import OnFirstEvent, XSAXReader
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)
from repro.xmlstream.serializer import EventSerializer
from repro.xmlstream.tree import XMLElement, tree_to_events
from repro.xquery.evaluator import TreeEvaluator, string_value


class _Scope:
    """Runtime state of one ``process-stream`` element instance."""

    __slots__ = ("tag", "attrs", "source", "buffers", "consumed", "is_document")

    def __init__(
        self,
        tag: str,
        attrs: Dict[str, str],
        source: Iterator[Event],
        buffers: ScopeBuffers,
        is_document: bool = False,
    ):
        self.tag = tag
        self.attrs = attrs
        self.source = source
        self.buffers = buffers
        self.consumed = False
        self.is_document = is_document


Binding = Union[_Scope, XMLElement, str, int, float]


class StarvedInput(Exception):
    """Raised by a non-blocking event source that has no event *yet*.

    Unlike ``StopIteration`` this does not mean end of input: the source may
    receive more events later.  The evaluator reacts by suspending its
    execution generator; resuming it retries the same pull.  Sources that
    can raise this must do so *before* mutating any state, so the retry is
    exact (both :class:`_InlineSource` and :class:`~repro.runtime.xsax
    .XSAXReader` — which merely propagates it from its underlying source —
    satisfy this).
    """


#: Yielded by the execution generators while their input source is starved.
_NEED_INPUT = object()

#: Returned by :func:`_pull` when the source is exhausted for good.
_END_OF_INPUT = object()


def _pull(source: Iterator[Event]):
    """Coroutine: the next event from ``source``, or ``_END_OF_INPUT``.

    Suspends (yielding ``_NEED_INPUT``) for as long as the source raises
    :class:`StarvedInput`; pull-based sources never do, so callers driving
    a pull source run straight through.
    """
    while True:
        try:
            return next(source)
        except StopIteration:
            return _END_OF_INPUT
        except StarvedInput:
            yield _NEED_INPUT


class StreamedEvaluator:
    """Executes a physical plan over an input event stream."""

    def __init__(
        self,
        plan: PhysicalPlan,
        dtd: Optional[DTD] = None,
        validate: bool = True,
    ):
        self.plan = plan
        self.dtd = dtd if dtd is not None else plan.dtd
        self.validate = validate

    # -------------------------------------------------------------- driver

    def run(
        self,
        events: Iterable[Event],
        output: Optional[io.TextIOBase] = None,
        stats: Optional[RuntimeStats] = None,
    ) -> RuntimeStats:
        """Evaluate the plan over ``events`` writing the result to ``output``.

        Returns the runtime statistics (buffer peak, counters, timing).
        """
        generator = self.execute(events, output, stats)
        try:
            next(generator)
        except StopIteration as stop:
            return stop.value
        # A pull source never raises StarvedInput, so the generator runs to
        # completion in one step; getting here means the caller handed a
        # push-mode source to the pull-mode driver.
        generator.close()
        raise EvaluationError("run() requires a pull source; use execute() for push mode")

    def execute(
        self,
        events: Iterable[Event],
        output: Optional[io.TextIOBase] = None,
        stats: Optional[RuntimeStats] = None,
    ):
        """The evaluation as a re-entrant generator (returns the stats).

        Yields ``_NEED_INPUT`` whenever ``events`` raises
        :class:`StarvedInput`; resume the generator once more input is
        available.  Over a pull source this never yields and a single
        ``next()`` drives the evaluation to completion (``StopIteration
        .value`` carries the stats).
        """
        self._stats = stats if stats is not None else RuntimeStats()
        self._buffers = BufferManager(self._stats)
        sink = output if output is not None else io.StringIO()
        self._serializer = EventSerializer(sink)
        self._env: Dict[str, Binding] = {}
        self._stats.start_timer()
        try:
            reader = XSAXReader(
                events, self.dtd, self.plan.conditions, validate=self.validate, stats=self._stats
            )
            first = yield from _pull(reader)
            if first is not _END_OF_INPUT and not isinstance(first, StartDocument):
                raise EvaluationError("input stream did not start with StartDocument")
            document_scope = _Scope(
                tag="#document",
                attrs={},
                source=reader,
                buffers=ScopeBuffers(self._buffers),
                is_document=True,
            )
            self._env["ROOT"] = document_scope
            yield from self._eval(self.plan.root)
            self._serializer.close()
            document_scope.buffers.close()
        finally:
            self._stats.stop_timer()
            self._stats.output_bytes = self._serializer.bytes_written
        return self._stats

    def run_to_string(
        self, events: Iterable[Event], stats: Optional[RuntimeStats] = None
    ) -> "tuple[str, RuntimeStats]":
        """Evaluate and return ``(output_xml, stats)``."""
        sink = io.StringIO()
        stats = self.run(events, sink, stats)
        return sink.getvalue(), stats

    # ---------------------------------------------------------- evaluation

    def _eval(self, op: PlanOp):
        # A coroutine (as is everything below that can pull input events):
        # ``yield from`` chains propagate input starvation up to execute().
        if isinstance(op, SequenceOp):
            for item in op.items:
                yield from self._eval(item)
            return
        if isinstance(op, TextOp):
            self._serializer.write(Text(op.text))
            return
        if isinstance(op, ConstructorOp):
            self._serializer.write(StartElement(op.name, op.attributes))
            yield from self._eval(op.content)
            self._serializer.write(EndElement(op.name))
            return
        if isinstance(op, CopyVarOp):
            yield from self._eval_copy(op)
            return
        if isinstance(op, BufferedEvalOp):
            self._eval_buffered(op)
            return
        if isinstance(op, IfOp):
            evaluator = TreeEvaluator(self._evaluation_bindings())
            branch = op.then_branch if evaluator.evaluate_boolean(op.condition) else op.else_branch
            yield from self._eval(branch)
            return
        if isinstance(op, ProcessStreamOp):
            yield from self._eval_process_stream(op)
            return
        raise EvaluationError(f"cannot execute plan operator {op!r}")

    # -------------------------------------------------------------- output

    def _write_items(self, items: List[object]) -> None:
        previous_atomic = False
        for item in items:
            if isinstance(item, bool):
                self._serializer.write(Text("true" if item else "false"))
                previous_atomic = True
            elif isinstance(item, (str, int, float)):
                if previous_atomic:
                    self._serializer.write(Text(" "))
                self._serializer.write(Text(string_value(item)))
                previous_atomic = True
            else:
                element = item.to_element() if hasattr(item, "to_element") else item
                for event in tree_to_events(element):
                    self._serializer.write(event)
                previous_atomic = False

    def _eval_buffered(self, op: BufferedEvalOp) -> None:
        evaluator = TreeEvaluator(self._evaluation_bindings())
        self._write_items(evaluator.evaluate(op.expr))

    def _eval_copy(self, op: CopyVarOp):
        binding = self._env.get(op.var)
        if binding is None:
            raise EvaluationError(f"copy of unbound variable ${op.var}")
        if isinstance(binding, _Scope):
            if not binding.consumed and binding.buffers.full_element is None:
                yield from self._stream_copy(binding)
                return
            element = StreamScopeNode(binding.tag, binding.attrs, binding.buffers).to_element()
            for event in tree_to_events(element):
                self._serializer.write(event)
            return
        if isinstance(binding, XMLElement):
            for event in tree_to_events(binding):
                self._serializer.write(event)
            return
        self._serializer.write(Text(string_value(binding)))

    def _stream_copy(self, scope: _Scope):
        """Copy the scope's element to the output directly from the stream."""
        self._serializer.write(StartElement(scope.tag, tuple(scope.attrs.items())))
        depth = 0
        while True:
            event = yield from _pull(scope.source)
            if event is _END_OF_INPUT:
                break
            if isinstance(event, OnFirstEvent):
                continue
            if isinstance(event, StartElement):
                depth += 1
                self._serializer.write(event)
            elif isinstance(event, EndElement):
                if depth == 0:
                    break
                depth -= 1
                self._serializer.write(event)
            elif isinstance(event, Text):
                self._serializer.write(event)
            elif isinstance(event, EndDocument):
                break
        self._serializer.write(EndElement(scope.tag))
        scope.consumed = True

    # ----------------------------------------------------------- bindings

    def _evaluation_bindings(self) -> Dict[str, object]:
        bindings: Dict[str, object] = {}
        for name, binding in self._env.items():
            if isinstance(binding, _Scope):
                bindings[name] = StreamScopeNode(binding.tag, binding.attrs, binding.buffers)
            else:
                bindings[name] = binding
        return bindings

    # ------------------------------------------------------ process-stream

    def _eval_process_stream(self, op: ProcessStreamOp):
        binding = self._env.get(op.var)
        if not isinstance(binding, _Scope):
            raise EvaluationError(
                f"process-stream ${op.var} is not bound to an active stream element"
            )
        scope = binding
        if scope.consumed:
            raise EvaluationError(
                f"process-stream ${op.var}: the element's children were already consumed"
            )
        on_first_handlers = [
            handler for handler in op.handlers if isinstance(handler, OnFirstHandlerOp)
        ]
        satisfied: set = set()
        fired: set = set()

        def fire_ready(max_index: float):
            for handler in on_first_handlers:
                if handler.index in fired:
                    continue
                if handler.index >= max_index:
                    break
                ready = handler.always_satisfied or (
                    handler.condition_id is not None and handler.condition_id in satisfied
                )
                if not ready:
                    break
                fired.add(handler.index)
                yield from self._eval(handler.body)

        def fire_remaining():
            for handler in on_first_handlers:
                if handler.index not in fired:
                    fired.add(handler.index)
                    yield from self._eval(handler.body)

        if op.buffer_whole:
            scope.buffers.ensure_full_element(scope.tag, scope.attrs)

        while True:
            event = yield from _pull(scope.source)
            if event is _END_OF_INPUT:
                break
            if isinstance(event, OnFirstEvent):
                satisfied.add(event.condition_id)
                continue
            if isinstance(event, Text):
                if op.buffer_whole:
                    scope.buffers.append_full_text(event.text)
                continue
            if isinstance(event, StartElement):
                yield from self._process_child(op, scope, event, fire_ready)
                continue
            if isinstance(event, (EndElement, EndDocument)):
                yield from fire_remaining()
                scope.consumed = True
                return
        # The source was exhausted without an explicit end event (replayed
        # subtrees end exactly at their closing tag).
        yield from fire_remaining()
        scope.consumed = True

    def _process_child(
        self,
        op: ProcessStreamOp,
        scope: _Scope,
        event: StartElement,
        fire_ready,
    ):
        label = event.name
        handler_index = op.on_index.get(label)
        max_index = handler_index if handler_index is not None else math.inf
        need_buffer = op.buffer_whole or label in op.buffer_labels
        subtree: Optional[XMLElement] = None
        if need_buffer:
            subtree = yield from self._materialize(event, scope.source)
            if op.buffer_whole:
                scope.buffers.append_full_child(subtree)
            else:
                scope.buffers.add_child(label, subtree)
        yield from fire_ready(max_index)
        if handler_index is not None:
            handler = op.handlers[handler_index]
            assert isinstance(handler, OnHandlerOp)
            if subtree is not None:
                yield from self._run_handler_on_tree(handler, subtree)
            else:
                yield from self._run_handler_streaming(handler, event, scope.source)
        elif subtree is None:
            yield from self._skip_subtree(scope.source)

    # ------------------------------------------------------------ handlers

    def _run_handler_streaming(
        self, handler: OnHandlerOp, event: StartElement, source: Iterator[Event]
    ):
        child_scope = _Scope(
            tag=event.name,
            attrs=event.attributes,
            source=source,
            buffers=ScopeBuffers(self._buffers),
        )
        yield from self._with_binding(handler.var, child_scope, handler.body)
        if not child_scope.consumed:
            yield from self._skip_subtree(source)
        child_scope.buffers.close()

    def _run_handler_on_tree(self, handler: OnHandlerOp, subtree: XMLElement):
        events = tree_to_events(subtree)
        # Skip the subtree's own start tag: the scope reads children only.
        iterator = iter(events)
        first = next(iterator, None)
        if not isinstance(first, StartElement):  # pragma: no cover - defensive
            raise EvaluationError("replayed subtree did not start with a start tag")
        replay = XSAXReader(
            _chain_one(first, iterator), self.dtd, self.plan.conditions, validate=False
        )
        # Consume the start tag again from the XSAX reader so conditions of
        # the replayed element are tracked exactly as on the live stream.
        next(replay, None)
        child_scope = _Scope(
            tag=subtree.tag,
            attrs=dict(subtree.attrs),
            source=replay,
            buffers=ScopeBuffers(self._buffers),
        )
        yield from self._with_binding(handler.var, child_scope, handler.body)
        child_scope.buffers.close()

    def _with_binding(self, name: str, binding: Binding, body: PlanOp):
        previous = self._env.get(name)
        had_previous = name in self._env
        self._env[name] = binding
        try:
            yield from self._eval(body)
        finally:
            if had_previous:
                self._env[name] = previous
            else:
                self._env.pop(name, None)

    # --------------------------------------------------------------- input

    def _materialize(self, event: StartElement, source: Iterator[Event]):
        """Build the subtree rooted at ``event`` by consuming its events."""
        root = XMLElement(event.name, event.attributes)
        stack: List[XMLElement] = [root]
        while True:
            item = yield from _pull(source)
            if item is _END_OF_INPUT:
                break
            if isinstance(item, OnFirstEvent):
                continue
            if isinstance(item, StartElement):
                child = XMLElement(item.name, item.attributes)
                stack[-1].append(child)
                stack.append(child)
            elif isinstance(item, Text):
                stack[-1].append_text(item.text)
            elif isinstance(item, EndElement):
                stack.pop()
                if not stack:
                    return root
            elif isinstance(item, EndDocument):  # pragma: no cover - defensive
                break
        return root

    def _skip_subtree(self, source: Iterator[Event]):
        """Consume and discard the events of one child subtree."""
        depth = 0
        while True:
            item = yield from _pull(source)
            if item is _END_OF_INPUT:
                return
            if isinstance(item, StartElement):
                depth += 1
            elif isinstance(item, EndElement):
                if depth == 0:
                    return
                depth -= 1
            elif isinstance(item, EndDocument):  # pragma: no cover - defensive
                return


def _chain_one(first: Event, rest: Iterator[Event]) -> Iterator[Event]:
    yield first
    yield from rest


# ---------------------------------------------------------------- push mode


_CHANNEL_CLOSED = object()


class EventChannel:
    """Bounded hand-off of event chunks from a producer to a consumer thread.

    The producer :meth:`put`s lists of events (chunks, to amortize queue
    overhead) and finally :meth:`close`s the channel; the consumer iterates
    events.  The queue bound provides back-pressure: a slow consumer stalls
    the producer instead of buffering the document.  When the consumer stops
    early (the plan finished without draining the stream, or it failed), the
    producer is released and further chunks are dropped.
    """

    def __init__(self, maxsize: int = 16):
        self._queue: "queue.Queue" = queue.Queue(maxsize)
        self._consumer_done = threading.Event()

    def put(self, chunk: List[Event]) -> bool:
        """Enqueue ``chunk``; returns False if the consumer already stopped."""
        while not self._consumer_done.is_set():
            try:
                self._queue.put(chunk, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    def close(self) -> None:
        """Signal end of input to the consumer."""
        self.put(_CHANNEL_CLOSED)

    def mark_consumer_done(self) -> None:
        """Called by the consumer when it stops reading (normally or not)."""
        self._consumer_done.set()

    def __iter__(self) -> Iterator[Event]:
        while True:
            chunk = self._queue.get()
            if chunk is _CHANNEL_CLOSED:
                return
            for event in chunk:
                yield event


class _InlineSource:
    """Non-blocking event source backing an inline (threadless) session.

    ``feed`` appends events; iteration pops them, raising
    :class:`StarvedInput` when the buffer is empty but the input is still
    open — the signal that suspends the evaluation generator until the next
    ``feed``/``finish`` resumes it.
    """

    __slots__ = ("_events", "_closed")

    def __init__(self):
        self._events: "deque" = deque()
        self._closed = False

    def extend(self, events: Iterable[Event]) -> None:
        self._events.extend(events)

    def close(self) -> None:
        self._closed = True

    def __iter__(self) -> "Iterator[Event]":
        return self

    def __next__(self) -> Event:
        if self._events:
            return self._events.popleft()
        if self._closed:
            raise StopIteration
        raise StarvedInput


def _drive_evaluator(evaluator, channel, sink, stats, error_box) -> None:
    """Worker-thread body of an :class:`EvaluatorSession`.

    A module-level function on purpose: the thread must not hold a
    reference to the session object, or a session dropped without
    ``finish()``/``abort()`` could never be garbage collected (its
    finalizer releases the blocked worker).
    """
    try:
        evaluator.run(iter(channel), sink, stats)
    except BaseException as exc:  # re-raised on the caller's thread
        error_box.append(exc)
    finally:
        channel.mark_consumer_done()


#: Execution modes of an :class:`EvaluatorSession`.
EXECUTION_MODES = ("threads", "inline")


class EvaluatorSession:
    """Push-based execution of one physical plan.

    Exposes the resumable life cycle

    >>> session = EvaluatorSession(plan, dtd)          # doctest: +SKIP
    >>> session.start()                                # doctest: +SKIP
    >>> session.feed(events); session.feed(more)       # doctest: +SKIP
    >>> output, stats = session.finish()               # doctest: +SKIP

    in one of two modes (``execution``):

    * ``"threads"`` (default) — a :class:`StreamedEvaluator` runs on a
      worker thread behind a bounded :class:`EventChannel`; ``feed`` blocks
      when the consumer lags (back-pressure).
    * ``"inline"`` — no worker thread: the evaluation is a suspended
      generator that ``feed`` resumes on the caller's thread until it
      starves again.  Evaluation errors surface synchronously from the
      ``feed`` that triggers them.

    ``feed`` accepts any iterable of events and may be called repeatedly;
    ``finish`` closes the input, drives the evaluation to completion,
    re-raises any evaluation error, and returns ``(output_xml, stats)``.
    The session is single-use; one dropped without ``finish()``/``abort()``
    is aborted by its finalizer, releasing the worker thread (a no-op in
    inline mode, which has no thread to strand).
    """

    def __init__(
        self,
        plan: PhysicalPlan,
        dtd: Optional[DTD] = None,
        validate: bool = True,
        stats: Optional[RuntimeStats] = None,
        channel_size: int = 16,
        execution: str = "threads",
    ):
        if execution not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution mode {execution!r}; expected one of {EXECUTION_MODES}"
            )
        self._evaluator = StreamedEvaluator(plan, dtd, validate=validate)
        self._stats = stats if stats is not None else RuntimeStats()
        self._execution = execution
        self._channel: Optional[EventChannel] = (
            EventChannel(channel_size) if execution == "threads" else None
        )
        self._source: Optional[_InlineSource] = (
            _InlineSource() if execution == "inline" else None
        )
        self._generator = None
        self._sink = io.StringIO()
        self._thread: Optional[threading.Thread] = None
        self._started = False
        self._error_box: List[BaseException] = []
        self._result: Optional[Tuple[str, RuntimeStats]] = None
        self._aborted = False

    @property
    def execution(self) -> str:
        return self._execution

    @property
    def started(self) -> bool:
        return self._started

    @property
    def finished(self) -> bool:
        return self._result is not None

    @property
    def _error(self) -> Optional[BaseException]:
        return self._error_box[0] if self._error_box else None

    def start(self) -> "EvaluatorSession":
        """Begin execution; must be called once before :meth:`feed`."""
        if self._started:
            raise EvaluationError("session already started")
        self._started = True
        if self._execution == "inline":
            self._generator = self._evaluator.execute(self._source, self._sink, self._stats)
            self._resume()  # run up to the first input pull
        else:
            self._thread = threading.Thread(
                target=_drive_evaluator,
                args=(self._evaluator, self._channel, self._sink, self._stats, self._error_box),
                daemon=True,
            )
            self._thread.start()
        return self

    def _resume(self) -> None:
        """Advance the inline generator until it starves or completes.

        One resume consumes everything currently buffered: the generator
        only yields again once the source raises :class:`StarvedInput`.
        Errors are recorded (for finish()) and re-raised immediately.
        """
        if self._generator is None:
            return
        try:
            next(self._generator)
        except StopIteration:
            self._generator = None
        except BaseException as exc:
            self._generator = None
            self._error_box.append(exc)
            raise

    def feed(self, events: Iterable[Event]) -> None:
        """Push a batch of events into the running evaluation."""
        if not self._started:
            raise EvaluationError("feed() before start()")
        if self._aborted:
            raise EvaluationError("feed() on an aborted session")
        if self._result is not None:
            raise EvaluationError("feed() after finish()")
        if self._error is not None:
            # Fail fast instead of at finish(); finish() re-raises too.
            raise self._error
        if self._execution == "inline":
            if self._generator is None:
                # The plan already finished (early termination): surplus
                # input is dropped, mirroring the channel's behaviour.
                return
            self._source.extend(events)
            self._resume()
            return
        chunk = events if isinstance(events, list) else list(events)
        if chunk:
            self._channel.put(chunk)
        if self._error is not None:
            raise self._error

    def finish(self) -> Tuple[str, RuntimeStats]:
        """Close the input and return ``(output_xml, stats)``.

        An aborted session has no result: its partial output must never be
        mistaken for a completed evaluation, so finish() raises instead.
        """
        if not self._started:
            raise EvaluationError("finish() before start()")
        if self._aborted:
            raise EvaluationError("finish() on an aborted session")
        if self._result is None:
            if self._execution == "inline":
                self._source.close()
                if self._error is not None:
                    raise self._error
                self._resume()  # end of input: the generator must complete
            else:
                self._channel.close()
                self._thread.join()
                if self._error is not None:
                    raise self._error
            self._result = (self._sink.getvalue(), self._stats)
        return self._result

    def abort(self) -> None:
        """Stop the session, discarding its output and swallowing errors."""
        if not self._started or self._result is not None or self._aborted:
            return
        self._aborted = True
        if self._execution == "inline":
            generator, self._generator = self._generator, None
            if generator is not None:
                generator.close()
            return
        self._channel.close()
        self._thread.join()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.abort()
        except Exception:
            pass
