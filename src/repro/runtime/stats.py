"""Runtime statistics shared by all engines.

The paper's evaluation reports two quantities — main-memory consumption and
running time.  :class:`RuntimeStats` is the single accounting object every
engine fills in, so the benchmark harness can compare engines on identical
metrics:

* ``peak_buffer_bytes`` — the maximum number of bytes held in explicit
  buffers at any point during evaluation (document trees for the DOM engine,
  projected trees for the projection engine, BDF buffers and per-element
  materializations for the FluX engine);
* ``events_processed`` / ``elements_parsed`` — stream progress counters;
* ``output_bytes`` — size of the serialized result;
* ``elapsed_seconds`` — wall-clock evaluation time (excluding query
  compilation, which is reported separately by the optimizer pipeline).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class RuntimeStats:
    """Mutable counters describing one query evaluation."""

    peak_buffer_bytes: int = 0
    current_buffer_bytes: int = 0
    events_processed: int = 0
    elements_parsed: int = 0
    onfirst_events: int = 0
    buffered_nodes: int = 0
    output_bytes: int = 0
    elapsed_seconds: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    _started_at: Optional[float] = field(default=None, repr=False)

    # ------------------------------------------------------------- buffers

    def buffer_grow(self, amount: int) -> None:
        """Record ``amount`` additional buffered bytes."""
        self.current_buffer_bytes += amount
        if self.current_buffer_bytes > self.peak_buffer_bytes:
            self.peak_buffer_bytes = self.current_buffer_bytes

    def buffer_shrink(self, amount: int) -> None:
        """Record the release of ``amount`` buffered bytes."""
        self.current_buffer_bytes = max(0, self.current_buffer_bytes - amount)

    # -------------------------------------------------------------- timing

    def start_timer(self) -> None:
        """Start (or restart) the evaluation wall-clock."""
        self._started_at = time.perf_counter()

    def stop_timer(self) -> None:
        """Stop the wall-clock and accumulate into ``elapsed_seconds``."""
        if self._started_at is not None:
            self.elapsed_seconds += time.perf_counter() - self._started_at
            self._started_at = None

    # ------------------------------------------------------------- summary

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by the benchmark reporting layer."""
        return {
            "peak_buffer_bytes": self.peak_buffer_bytes,
            "events_processed": self.events_processed,
            "elements_parsed": self.elements_parsed,
            "onfirst_events": self.onfirst_events,
            "buffered_nodes": self.buffered_nodes,
            "output_bytes": self.output_bytes,
            "elapsed_seconds": self.elapsed_seconds,
            **self.extra,
        }

    def observe(self, obs, **labels) -> None:
        """Fold this evaluation's counters into an observability hub.

        ``obs`` is a :class:`repro.obs.Observability` (duck-typed: anything
        carrying a ``metrics`` registry works; a hub without metrics is a
        no-op), so engines can call this unconditionally once a hub is
        configured.  ``labels`` (e.g. ``engine="flux"``) distinguish the
        series of different engines sharing one registry.
        """
        metrics = getattr(obs, "metrics", None)
        if metrics is None:
            return
        metrics.counter(
            "repro_engine_events_total",
            "Parser events processed by solo engine executions.",
        ).inc(self.events_processed, **labels)
        metrics.counter(
            "repro_engine_output_bytes_total",
            "Serialized result bytes produced by solo engine executions.",
        ).inc(self.output_bytes, **labels)
        metrics.histogram(
            "repro_engine_eval_seconds",
            "Wall-clock evaluation time of one solo engine execution.",
        ).observe(self.elapsed_seconds, **labels)

    def summary(self) -> str:
        return (
            f"peak buffer: {self.peak_buffer_bytes} B, "
            f"events: {self.events_processed}, "
            f"output: {self.output_bytes} B, "
            f"time: {self.elapsed_seconds * 1000:.1f} ms"
        )
