"""Runtime engine: buffers, XSAX, physical plans, and streamed evaluation.

This package implements the right half of Figure 2 of the paper:

* the **query compiler** (:mod:`repro.runtime.compiler`) turns an optimized
  FluX query into a physical query plan, first computing the *buffer
  description forest* (:mod:`repro.runtime.bdf`) that defines which paths of
  the input document need to be buffered;
* the **buffer manager** (:mod:`repro.runtime.buffers`) holds those buffers
  and accounts every byte, which is what the memory benchmarks report;
* **XSAX** (:mod:`repro.runtime.xsax`) is the validating SAX parser extended
  with ``on-first`` events, produced from a finite automaton built from the
  DTD;
* the **streamed query evaluator** (:mod:`repro.runtime.evaluator`) executes
  the physical plan over the XSAX event stream and emits the result as an
  output XML stream;
* the **plan cache** (:mod:`repro.runtime.plan_cache`) is the single
  compilation gateway shared by the engine and the multi-query service — a
  bounded, thread-safe LRU of compiled plans keyed by ``(query text, DTD
  fingerprint, pipeline config)`` with single-flight compilation.
"""

from repro.runtime.stats import RuntimeStats
from repro.runtime.buffers import BufferManager, StreamScopeNode
from repro.runtime.bdf import BufferDescriptionForest, BufferSpec, build_bdf
from repro.runtime.xsax import ConditionRegistry, OnFirstEvent, XSAXReader
from repro.runtime.plan import PhysicalPlan
from repro.runtime.compiler import QueryCompiler, compile_flux
from repro.runtime.evaluator import StreamedEvaluator
from repro.runtime.plan_cache import CacheStats, PlanCache, cache_key, dtd_fingerprint

__all__ = [
    "CacheStats",
    "PlanCache",
    "cache_key",
    "dtd_fingerprint",
    "RuntimeStats",
    "BufferManager",
    "StreamScopeNode",
    "BufferDescriptionForest",
    "BufferSpec",
    "build_bdf",
    "ConditionRegistry",
    "OnFirstEvent",
    "XSAXReader",
    "PhysicalPlan",
    "QueryCompiler",
    "compile_flux",
    "StreamedEvaluator",
]
