"""LRU cache of compiled query plans — the single compilation gateway.

Compiling the same query text twice — in one :class:`~repro.engines
.flux_engine.FluxEngine`, across repeated :meth:`~repro.service.service
.QueryService.register` calls, or in two services/engines sharing a cache —
must not pay the optimizer twice.  This module lives in ``repro.runtime``
(not ``repro.service``) on purpose: both the single-query engine layer and
the multi-query service layer compile through *one* cache type, and placing
it beside the compiler keeps the dependency arrow pointing downward
(``engines → runtime`` and ``service → runtime``; never ``engines →
service``).  Plans are cached under ``(query text, DTD fingerprint)``:

* the *query text* because compilation is deterministic in it (given a
  pipeline configuration),
* the *DTD fingerprint* (:meth:`repro.dtd.schema.DTD.fingerprint`) because
  every stage of the pipeline — algebraic rewriting, scheduling, the BDF,
  XSAX condition registration — bakes schema constraints into the plan.  A
  plan compiled under one DTD is wrong (not merely suboptimal) under
  another, so a schema change is a cache miss by construction.

Because compilation is deterministic only *given a pipeline configuration*,
the key carries a third component: the pipeline's ablation-switch digest
(:meth:`~repro.core.optimizer.OptimizerPipeline.config_fingerprint`).  An
ablation pipeline therefore never shares entries with the default one.

The cache is bounded and LRU-evicting, thread-safe (all entry reads and
writes — including ``len()`` and ``in`` — hold the cache lock), and exposes
hit/miss/eviction counters for the service metrics.  Concurrent
:meth:`PlanCache.get_or_compile` misses on the same key are *single-flight*:
one caller compiles while the others wait for (and share) its plan, so a
thundering herd of identical registrations pays the optimizer once.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.optimizer import OptimizerPipeline
from repro.dtd.schema import DTD
from repro.runtime.compiler import CompiledQueryPlan, compile_query

#: Fingerprint stand-in for "no schema" (plans then use maximal buffering).
NO_DTD_FINGERPRINT = "no-dtd"

#: Configuration digest of a default (all optimizations on) pipeline.
DEFAULT_PIPELINE_CONFIG = OptimizerPipeline().config_fingerprint()


def dtd_fingerprint(dtd: Optional[DTD]) -> str:
    """The cache-key component for a schema (``None`` allowed)."""
    return dtd.fingerprint() if dtd is not None else NO_DTD_FINGERPRINT


def cache_key(
    query: str, dtd: Optional[DTD], config: str = DEFAULT_PIPELINE_CONFIG
) -> Tuple[str, str, str]:
    """The cache key for ``query`` compiled under ``dtd`` and ``config``."""
    return (query, dtd_fingerprint(dtd), config)


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`PlanCache`.

    ``misses`` counts lookups that found no entry and did not share an
    in-progress compilation.  Through :meth:`PlanCache.get_or_compile` —
    the only lookup the engine and service layers use — every such miss is
    exactly one optimizer run (the single-flight leader), so under
    compile-through use ``misses`` equals compilations paid; bare
    :meth:`PlanCache.get` probes also count their failures here.  A
    concurrent ``get_or_compile`` that found no entry but shared a
    leader's in-progress compilation is ``coalesced`` instead — it got its
    plan without compiling, exactly like a hit, so lumping it into
    ``misses`` would under-report ``hit_rate`` precisely in the
    thundering-herd case the single-flight machinery exists for.
    Followers of a flight whose compilation *failed* are counted nowhere:
    they re-raise the leader's error, and a failing cache must not look
    healthy in ``hit_rate``.

    The counters are mutated only while the owning cache holds its lock, so
    reads from other threads see internally consistent values; the object
    itself carries no lock and must not be shared between caches.
    """

    hits: int = 0
    misses: int = 0
    #: Lookups that joined another caller's in-progress compilation instead
    #: of compiling themselves (single-flight followers).
    coalesced: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.coalesced

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without a compilation (hit or coalesced)."""
        return (self.hits + self.coalesced) / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class _Flight:
    """One in-progress compilation shared by concurrent cache misses."""

    __slots__ = ("done", "entry", "error", "followers")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.entry: Optional[CompiledQueryPlan] = None
        self.error: Optional[BaseException] = None
        #: How many callers joined this flight (telemetry for tests; the
        #: ``coalesced`` stat counts only followers actually served).
        self.followers = 0


def _clone_exception(error: BaseException) -> Optional[BaseException]:
    """A fresh exception instance equivalent to ``error``, or ``None``.

    Re-raising one exception instance from several follower threads makes
    their tracebacks stomp each other: every ``raise`` splices new frames
    onto the *shared* ``__traceback__``.  Each follower therefore gets its
    own copy (traceback cleared, so only that follower's raise site grows
    it).  Exotic exception types whose constructors defeat ``copy.copy``
    return ``None`` — the caller then falls back to the shared instance.
    """
    try:
        clone = copy.copy(error)
    except Exception:
        return None
    if clone is error or type(clone) is not type(error):
        return None
    clone.__traceback__ = None
    return clone


class PlanCache:
    """Bounded LRU cache of :class:`~repro.runtime.compiler.CompiledQueryPlan`.

    A single cache can back several services (or engines) at once: entries
    from different schemas coexist because the fingerprint is part of the
    key.  ``capacity`` bounds the number of cached plans; the least recently
    *used* (looked up or inserted) entry is evicted first.

    Thread-safety: every public method (including ``len()`` and ``in``) is
    safe to call from any thread; entry reads and writes hold the cache
    lock, and compilation itself runs outside it (see
    :meth:`get_or_compile`).  Lifecycle: the cache has no close step — it
    may outlive every engine and service using it, and :meth:`clear` only
    drops entries, never in-flight compilations.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("plan cache capacity must be at least 1")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[Tuple[str, str, str], CompiledQueryPlan]" = OrderedDict()
        self._lock = threading.Lock()
        # In-progress compilations, for single-flight get_or_compile().
        self._inflight: Dict[Tuple[str, str, str], "_Flight"] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple[str, str, str]) -> bool:
        with self._lock:
            return key in self._entries

    def get(
        self,
        query: str,
        dtd: Optional[DTD],
        config: str = DEFAULT_PIPELINE_CONFIG,
    ) -> Optional[CompiledQueryPlan]:
        """The cached plan for ``(query, dtd, config)``, or ``None`` (a miss)."""
        key = cache_key(query, dtd, config)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, entry: CompiledQueryPlan) -> None:
        """Insert a compiled plan, evicting the LRU entry when full."""
        key = cache_key(entry.source, entry.dtd, entry.pipeline_config)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = entry
                return
            while len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            self._entries[key] = entry

    def get_or_compile(
        self,
        query: str,
        pipeline: OptimizerPipeline,
    ) -> Tuple[CompiledQueryPlan, bool]:
        """``(plan, from_cache)`` for ``query`` under ``pipeline``'s schema
        and configuration, compiling (and caching) the plan on a miss.

        Concurrent misses on the same key compile once: the first caller
        (the *leader*) runs the optimizer outside the cache lock while
        followers wait on its flight and share the plan.  ``from_cache``
        reports whether *this* call's plan came without compiling — a hit,
        or a followed flight — so it stays accurate even when the cache is
        shared and other callers race.  Stats mirror that split: a leader
        is the only ``miss`` (one compilation paid); followers are counted
        ``coalesced``, keeping ``hit_rate`` honest under a thundering herd
        of identical registrations.  A leader's compilation error
        propagates to its followers — each follower raises its *own* copy
        (chained to the leader's original via ``__cause__``) so concurrent
        tracebacks cannot stomp each other; the flight is cleared, so later
        calls retry.
        """
        key = cache_key(query, pipeline.dtd, pipeline.config_fingerprint())
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry, True
            flight = self._inflight.get(key)
            if flight is None:
                flight = self._inflight[key] = _Flight()
                leader = True
                self.stats.misses += 1
            else:
                leader = False
                flight.followers += 1
        if not leader:
            flight.done.wait()
            if flight.error is not None:
                clone = _clone_exception(flight.error)
                if clone is None:
                    raise flight.error
                raise clone from flight.error
            # Counted only now, plan in hand: a follower of a *failed*
            # flight must not inflate hit_rate.
            with self._lock:
                self.stats.coalesced += 1
            return flight.entry, True
        try:
            entry = compile_query(query, pipeline=pipeline)
        except BaseException as exc:
            flight.error = exc
            raise
        else:
            flight.entry = entry
            self.put(entry)
            return entry, False
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            flight.done.set()

    def clear(self) -> None:
        """Drop all entries (stats are kept)."""
        with self._lock:
            self._entries.clear()
