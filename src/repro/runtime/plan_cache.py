"""LRU cache of compiled query plans — the single compilation gateway.

Compiling the same query text twice — in one :class:`~repro.engines
.flux_engine.FluxEngine`, across repeated :meth:`~repro.service.service
.QueryService.register` calls, or in two services/engines sharing a cache —
must not pay the optimizer twice.  This module lives in ``repro.runtime``
(not ``repro.service``) on purpose: both the single-query engine layer and
the multi-query service layer compile through *one* cache type, and placing
it beside the compiler keeps the dependency arrow pointing downward
(``engines → runtime`` and ``service → runtime``; never ``engines →
service``).  Plans are cached under ``(query text, DTD fingerprint)``:

* the *query text* because compilation is deterministic in it (given a
  pipeline configuration),
* the *DTD fingerprint* (:meth:`repro.dtd.schema.DTD.fingerprint`) because
  every stage of the pipeline — algebraic rewriting, scheduling, the BDF,
  XSAX condition registration — bakes schema constraints into the plan.  A
  plan compiled under one DTD is wrong (not merely suboptimal) under
  another, so a schema change is a cache miss by construction.

Because compilation is deterministic only *given a pipeline configuration*,
the key carries a third component: the pipeline's ablation-switch digest
(:meth:`~repro.core.optimizer.OptimizerPipeline.config_fingerprint`).  An
ablation pipeline therefore never shares entries with the default one.

The cache is bounded and LRU-evicting, thread-safe (all entry reads and
writes — including ``len()`` and ``in`` — hold the cache lock), and exposes
hit/miss/eviction counters for the service metrics.  Concurrent
:meth:`PlanCache.get_or_compile` misses on the same key are *single-flight*:
one caller compiles while the others wait for (and share) its plan, so a
thundering herd of identical registrations pays the optimizer once.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, cast

from repro.core.optimizer import OptimizerPipeline
from repro.dtd.schema import DTD
from repro.runtime.compiler import CompiledQueryPlan, compile_query
from repro.xquery.ast import VarRef

#: Fingerprint stand-in for "no schema" (plans then use maximal buffering).
NO_DTD_FINGERPRINT = "no-dtd"

#: Configuration digest of a default (all optimizations on) pipeline.
DEFAULT_PIPELINE_CONFIG = OptimizerPipeline().config_fingerprint()


def dtd_fingerprint(dtd: Optional[DTD]) -> str:
    """The cache-key component for a schema (``None`` allowed)."""
    return dtd.fingerprint() if dtd is not None else NO_DTD_FINGERPRINT


def cache_key(
    query: str, dtd: Optional[DTD], config: str = DEFAULT_PIPELINE_CONFIG
) -> Tuple[str, str, str]:
    """The cache key for ``query`` compiled under ``dtd`` and ``config``."""
    return (query, dtd_fingerprint(dtd), config)


# --------------------------------------------------------- structure keys
#
# Two registrations whose query texts differ only in whitespace or variable
# names compile to the *same* computation; the multi-query service wants to
# evaluate that computation once and fan the result out.  The structure key
# names the computation itself: a canonical serialization of the parsed
# query AST *and* the physical plan tree, with every variable α-renamed by
# first occurrence, joined with the DTD fingerprint and pipeline config.
# Serializing both trees (rather than, say, the rendered FluX syntax, which
# omits ``process-stream`` element types) guarantees that two entries with
# equal keys have identical routing profiles — the profile is derived from
# the parsed AST (projection tree) and the plan (labels, buffers,
# conditions) — and identical evaluation semantics.


def _canon_var(name: str, rename: Dict[str, str], out: List[str]) -> None:
    canon = rename.get(name)
    if canon is None:
        canon = f"v{len(rename)}"
        rename[name] = canon
    out.append(canon)


def _canon_value(value: object, rename: Dict[str, str], out: List[str]) -> None:
    """Append a canonical, unambiguous rendering of ``value`` to ``out``.

    Handles exactly the value vocabulary of the plan/AST dataclasses:
    nested dataclasses (class name + fields in declaration order), tuples,
    frozensets and dicts (sorted — their iteration order is not
    structural), and scalar leaves.  Fields named ``var`` and the ``name``
    of a :class:`~repro.xquery.ast.VarRef` are α-renamed; every other
    string (element types, labels, literal text) is structural and kept.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out.append(f"({type(value).__name__}")
        is_var_ref = isinstance(value, VarRef)
        for field_info in dataclasses.fields(value):
            field_name = field_info.name
            field_value = getattr(value, field_name)
            out.append(f" {field_name}=")
            if field_name == "var" or (is_var_ref and field_name == "name"):
                _canon_var(cast(str, field_value), rename, out)
            else:
                _canon_value(field_value, rename, out)
        out.append(")")
    elif isinstance(value, tuple) or isinstance(value, list):
        out.append("[")
        for item in value:
            _canon_value(item, rename, out)
            out.append(",")
        out.append("]")
    elif isinstance(value, (set, frozenset)):
        out.append("{")
        for item in sorted(value, key=repr):
            _canon_value(item, rename, out)
            out.append(",")
        out.append("}")
    elif isinstance(value, dict):
        out.append("<")
        for item_key in sorted(value, key=repr):
            _canon_value(item_key, rename, out)
            out.append(":")
            _canon_value(value[item_key], rename, out)
            out.append(",")
        out.append(">")
    else:
        # Scalar leaf (str/int/float/bool/None): repr is unambiguous.
        out.append(repr(value))


def structure_key(entry: CompiledQueryPlan) -> str:
    """The structural identity of a compiled plan.

    Equal keys mean the entries are the same computation — identical
    parsed-AST and physical-plan trees up to a consistent renaming of
    variables, under the same DTD fingerprint and pipeline configuration —
    so a shared pass may evaluate one of them and serve the output to
    every registrant of the other.  Computed once per entry and memoized
    on it (the serialization walks both trees).
    """
    cached = entry.__dict__.get("_structure_key")
    if cached is not None:
        return cast(str, cached)
    out: List[str] = []
    rename: Dict[str, str] = {}
    _canon_value(entry.optimized.parsed, rename, out)
    out.append("|")
    _canon_value(entry.plan.root, rename, out)
    digest = hashlib.sha256("".join(out).encode("utf-8")).hexdigest()
    key = f"{digest}:{dtd_fingerprint(entry.dtd)}:{entry.pipeline_config}"
    entry.__dict__["_structure_key"] = key
    return key


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`PlanCache`.

    ``misses`` counts lookups that found no entry and did not share an
    in-progress compilation.  Through :meth:`PlanCache.get_or_compile` —
    the only lookup the engine and service layers use — every such miss is
    exactly one optimizer run (the single-flight leader), so under
    compile-through use ``misses`` equals compilations paid; bare
    :meth:`PlanCache.get` probes also count their failures here.  A
    concurrent ``get_or_compile`` that found no entry but shared a
    leader's in-progress compilation is ``coalesced`` instead — it got its
    plan without compiling, exactly like a hit, so lumping it into
    ``misses`` would under-report ``hit_rate`` precisely in the
    thundering-herd case the single-flight machinery exists for.
    Followers of a flight whose compilation *failed* are counted nowhere:
    they re-raise the leader's error, and a failing cache must not look
    healthy in ``hit_rate``.

    The counters are mutated only while the owning cache holds its lock, so
    reads from other threads see internally consistent values; the object
    itself carries no lock and must not be shared between caches.
    """

    hits: int = 0
    misses: int = 0
    #: Lookups that joined another caller's in-progress compilation instead
    #: of compiling themselves (single-flight followers).
    coalesced: int = 0
    evictions: int = 0
    #: Entries inserted by :meth:`PlanCache.load` (warm-start, not lookups:
    #: they affect no hit/miss accounting, but a restarted service wants to
    #: know how many compilations its snapshot spared it).
    preloaded: int = 0
    #: Inserted entries replaced by an already-cached structurally identical
    #: plan (same :func:`structure_key`, different query text).  Each one is
    #: a plan object the cache now shares between keys instead of storing
    #: twice — the substrate of the service layer's fleet dedup.
    interned: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.coalesced

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without a compilation (hit or coalesced)."""
        return (self.hits + self.coalesced) / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "evictions": self.evictions,
            "preloaded": self.preloaded,
            "interned": self.interned,
            "hit_rate": self.hit_rate,
        }


@dataclass
class PlanObservations:
    """Observed pass metrics for one plan structure (cost calibration).

    The static cost model (:mod:`repro.analysis.query.cost`) predicts
    events routed and items buffered from the DTD alone; real passes know
    better.  The service folds each finished pass into one of these per
    plan *structure* (α-renamed identity — aliases share calibration),
    and snapshots persist them beside the artifacts so a warm-started
    service explains and mode-selects with measured numbers.

    Totals are cumulative over ``passes``; ``peak_buffer_bytes`` is the
    maximum single-pass peak, the figure the buffer-bound soundness
    property pins down.
    """

    passes: int = 0
    events_routed: float = 0.0
    document_bytes: float = 0.0
    elapsed_seconds: float = 0.0
    peak_buffer_bytes: int = 0

    def record(
        self,
        events_routed: float,
        document_bytes: float,
        elapsed_seconds: float,
        peak_buffer_bytes: int = 0,
    ) -> None:
        """Fold one observed pass into the running totals."""
        self.passes += 1
        self.events_routed += events_routed
        self.document_bytes += document_bytes
        self.elapsed_seconds += elapsed_seconds
        if peak_buffer_bytes > self.peak_buffer_bytes:
            self.peak_buffer_bytes = peak_buffer_bytes

    def merge(self, other: "PlanObservations") -> None:
        """Fold another record in (snapshot load over live observations)."""
        self.passes += other.passes
        self.events_routed += other.events_routed
        self.document_bytes += other.document_bytes
        self.elapsed_seconds += other.elapsed_seconds
        if other.peak_buffer_bytes > self.peak_buffer_bytes:
            self.peak_buffer_bytes = other.peak_buffer_bytes

    def as_dict(self) -> Dict[str, float]:
        return {
            "passes": float(self.passes),
            "events_routed": self.events_routed,
            "document_bytes": self.document_bytes,
            "elapsed_seconds": self.elapsed_seconds,
            "peak_buffer_bytes": float(self.peak_buffer_bytes),
        }

    @classmethod
    def from_dict(cls, values: Dict[str, float]) -> "PlanObservations":
        return cls(
            passes=int(values.get("passes", 0)),
            events_routed=float(values.get("events_routed", 0.0)),
            document_bytes=float(values.get("document_bytes", 0.0)),
            elapsed_seconds=float(values.get("elapsed_seconds", 0.0)),
            peak_buffer_bytes=int(values.get("peak_buffer_bytes", 0)),
        )


@dataclass(frozen=True)
class PlanArtifact:
    """One compiled plan, serialized for shipping or persistence.

    The unit two machineries share:

    * the **multi-process service pool** ships artifacts from the parent's
      cache to worker processes over a registration channel, so workers
      reconstruct plans without ever running the optimizer;
    * :meth:`PlanCache.dump` / :meth:`PlanCache.load` persist a cache as a
      list of artifacts, so a restarted service warm-starts instead of
      recompiling its standing queries.

    The identifying components (``source``, ``dtd_fingerprint``,
    ``pipeline_config``) are carried *beside* the pickled plan — they are
    exactly the cache key, so a receiver can place (or reject) an artifact
    without unpickling ``payload`` first.  ``payload`` is the pickled
    :class:`~repro.runtime.compiler.CompiledQueryPlan`; ``len(payload)`` is
    the shipping cost a pool reports as ``ship_bytes``.
    """

    source: str
    dtd_fingerprint: str
    pipeline_config: str
    payload: bytes

    @classmethod
    def from_plan(cls, entry: CompiledQueryPlan) -> "PlanArtifact":
        """Serialize one compiled plan (the plan embeds its own DTD)."""
        return cls(
            source=entry.source,
            dtd_fingerprint=dtd_fingerprint(entry.dtd),
            pipeline_config=entry.pipeline_config,
            payload=pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL),
        )

    @property
    def key(self) -> Tuple[str, str, str]:
        """The :func:`cache_key` this artifact fills."""
        return (self.source, self.dtd_fingerprint, self.pipeline_config)

    def load_plan(self) -> CompiledQueryPlan:
        """Reconstruct the compiled plan (no optimizer run)."""
        entry = pickle.loads(self.payload)
        if not isinstance(entry, CompiledQueryPlan):
            raise TypeError(
                f"plan artifact payload unpickled to {type(entry).__name__}, "
                "not a CompiledQueryPlan"
            )
        return entry


class _Flight:
    """One in-progress compilation shared by concurrent cache misses."""

    __slots__ = ("done", "entry", "error", "followers")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.entry: Optional[CompiledQueryPlan] = None
        self.error: Optional[BaseException] = None
        #: How many callers joined this flight (telemetry for tests; the
        #: ``coalesced`` stat counts only followers actually served).
        self.followers = 0


def _clone_exception(error: BaseException) -> Optional[BaseException]:
    """A fresh exception instance equivalent to ``error``, or ``None``.

    Re-raising one exception instance from several follower threads makes
    their tracebacks stomp each other: every ``raise`` splices new frames
    onto the *shared* ``__traceback__``.  Each follower therefore gets its
    own copy (traceback cleared, so only that follower's raise site grows
    it).  Exotic exception types whose constructors defeat ``copy.copy``
    return ``None`` — the caller then falls back to the shared instance.
    """
    try:
        clone = copy.copy(error)
    except Exception:
        return None
    if clone is error or type(clone) is not type(error):
        return None
    clone.__traceback__ = None
    return clone


class PlanCache:
    """Bounded LRU cache of :class:`~repro.runtime.compiler.CompiledQueryPlan`.

    A single cache can back several services (or engines) at once: entries
    from different schemas coexist because the fingerprint is part of the
    key.  ``capacity`` bounds the number of cached plans; the least recently
    *used* (looked up or inserted) entry is evicted first.

    Thread-safety: every public method (including ``len()`` and ``in``) is
    safe to call from any thread; entry reads and writes hold the cache
    lock, and compilation itself runs outside it (see
    :meth:`get_or_compile`).  Lifecycle: the cache has no close step — it
    may outlive every engine and service using it, and :meth:`clear` only
    drops entries, never in-flight compilations.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("plan cache capacity must be at least 1")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[Tuple[str, str, str], CompiledQueryPlan]" = OrderedDict()
        self._lock = threading.Lock()
        # In-progress compilations, for single-flight get_or_compile().
        self._inflight: Dict[Tuple[str, str, str], "_Flight"] = {}
        # Structural interning: one canonical plan object per structure
        # key, shared by every alias key that inserts an equal structure;
        # refcounts keep the canonical alive exactly as long as some cache
        # entry uses it.  All three maps are guarded by the cache lock.
        self._structure_entries: Dict[str, CompiledQueryPlan] = {}
        self._structure_refs: Dict[str, int] = {}
        self._entry_structures: Dict[Tuple[str, str, str], str] = {}
        # Observed pass metrics by structure key, LRU-bounded separately
        # from the entries (calibration outlives eviction: a re-compiled
        # plan keeps its history).  Guarded by the cache lock.
        self._observations: "OrderedDict[str, PlanObservations]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple[str, str, str]) -> bool:
        with self._lock:
            return key in self._entries

    def get(
        self,
        query: str,
        dtd: Optional[DTD],
        config: str = DEFAULT_PIPELINE_CONFIG,
    ) -> Optional[CompiledQueryPlan]:
        """The cached plan for ``(query, dtd, config)``, or ``None`` (a miss)."""
        key = cache_key(query, dtd, config)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, entry: CompiledQueryPlan) -> CompiledQueryPlan:
        """Insert a compiled plan, evicting the LRU entry when full.

        Returns the entry actually stored: when the cache already holds a
        *structurally identical* plan (same :func:`structure_key`), the new
        entry is interned — the existing canonical plan object is stored
        (and returned) instead, so alias keys share one plan.
        """
        skey = structure_key(entry)
        key = cache_key(entry.source, entry.dtd, entry.pipeline_config)
        with self._lock:
            return self._insert_locked(key, entry, skey)

    def _insert_locked(
        self,
        key: Tuple[str, str, str],
        entry: CompiledQueryPlan,
        skey: str,
    ) -> CompiledQueryPlan:
        """Store ``entry`` under ``key``, interning by structure.

        Caller holds the cache lock.  ``key`` may differ from the entry's
        own source key (snapshot alias records); the structure maps track
        how many live cache entries share each canonical plan so eviction
        never strands (or prematurely drops) a shared object.
        """
        canonical = self._structure_entries.get(skey)
        if canonical is not None:
            if canonical is not entry:
                self.stats.interned += 1
                entry = canonical
        else:
            self._structure_entries[skey] = entry
        if key in self._entries:
            self._entries.move_to_end(key)
            old_skey = self._entry_structures[key]
            if old_skey != skey:
                self._release_structure_locked(old_skey)
                self._entry_structures[key] = skey
                self._structure_refs[skey] = self._structure_refs.get(skey, 0) + 1
            self._entries[key] = entry
            return entry
        while len(self._entries) >= self.capacity:
            evicted_key, _ = self._entries.popitem(last=False)
            self._release_structure_locked(self._entry_structures.pop(evicted_key))
            self.stats.evictions += 1
        # Eviction may have just dropped the canonical this entry interned
        # against (the evictee was its last holder); re-seed it so the
        # structure table always maps skey → the object live entries share.
        self._structure_entries.setdefault(skey, entry)
        self._entries[key] = entry
        self._entry_structures[key] = skey
        self._structure_refs[skey] = self._structure_refs.get(skey, 0) + 1
        return entry

    def _release_structure_locked(self, skey: str) -> None:
        """Drop one cache entry's claim on a canonical plan (lock held)."""
        refs = self._structure_refs.get(skey, 0) - 1
        if refs <= 0:
            self._structure_refs.pop(skey, None)
            self._structure_entries.pop(skey, None)
        else:
            self._structure_refs[skey] = refs

    def structure_count(self) -> int:
        """How many distinct plan structures the cached entries span."""
        with self._lock:
            return len(self._structure_entries)

    # ------------------------------------------------- observed pass metrics

    #: Bound on tracked structures' observation records (oldest-updated
    #: records drop first once a cache outlives this many structures).
    OBSERVATION_LIMIT = 1024

    def observe(
        self,
        entry: CompiledQueryPlan,
        *,
        events_routed: float = 0.0,
        document_bytes: float = 0.0,
        elapsed_seconds: float = 0.0,
        peak_buffer_bytes: int = 0,
    ) -> None:
        """Fold one observed pass of ``entry``'s structure into the sidecar.

        Keyed by :func:`structure_key`, so every alias registration of the
        same computation feeds (and benefits from) one record.
        """
        skey = structure_key(entry)
        with self._lock:
            record = self._observations.get(skey)
            if record is None:
                record = self._observations[skey] = PlanObservations()
            record.record(
                events_routed, document_bytes, elapsed_seconds, peak_buffer_bytes
            )
            self._observations.move_to_end(skey)
            while len(self._observations) > self.OBSERVATION_LIMIT:
                self._observations.popitem(last=False)

    def observations_for(
        self, entry: CompiledQueryPlan
    ) -> Optional[PlanObservations]:
        """A copy of the observed metrics for ``entry``'s structure, if any."""
        skey = structure_key(entry)
        with self._lock:
            record = self._observations.get(skey)
            if record is None:
                return None
            return dataclasses.replace(record)

    def get_or_compile(
        self,
        query: str,
        pipeline: OptimizerPipeline,
    ) -> Tuple[CompiledQueryPlan, bool]:
        """``(plan, from_cache)`` for ``query`` under ``pipeline``'s schema
        and configuration, compiling (and caching) the plan on a miss.

        Concurrent misses on the same key compile once: the first caller
        (the *leader*) runs the optimizer outside the cache lock while
        followers wait on its flight and share the plan.  ``from_cache``
        reports whether *this* call's plan came without compiling — a hit,
        or a followed flight — so it stays accurate even when the cache is
        shared and other callers race.  Stats mirror that split: a leader
        is the only ``miss`` (one compilation paid); followers are counted
        ``coalesced``, keeping ``hit_rate`` honest under a thundering herd
        of identical registrations.  A leader's compilation error
        propagates to its followers — each follower raises its *own* copy
        (chained to the leader's original via ``__cause__``) so concurrent
        tracebacks cannot stomp each other; the flight is cleared, so later
        calls retry.
        """
        key = cache_key(query, pipeline.dtd, pipeline.config_fingerprint())
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry, True
            flight = self._inflight.get(key)
            if flight is None:
                flight = self._inflight[key] = _Flight()
                leader = True
                self.stats.misses += 1
            else:
                leader = False
                flight.followers += 1
        if not leader:
            flight.done.wait()
            if flight.error is not None:
                clone = _clone_exception(flight.error)
                if clone is None:
                    raise flight.error
                raise clone from flight.error
            # Counted only now, plan in hand: a follower of a *failed*
            # flight must not inflate hit_rate.
            with self._lock:
                self.stats.coalesced += 1
            return flight.entry, True
        try:
            entry = compile_query(query, pipeline=pipeline)
        except BaseException as exc:
            flight.error = exc
            raise
        else:
            # put() may intern the fresh plan against a structurally
            # identical cached one; callers (and followers) must get the
            # stored object, so alias registrations share a single plan.
            entry = self.put(entry)
            flight.entry = entry
            return entry, False
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            flight.done.set()

    def clear(self) -> None:
        """Drop all entries (stats are kept)."""
        with self._lock:
            self._entries.clear()
            self._structure_entries.clear()
            self._structure_refs.clear()
            self._entry_structures.clear()

    def register_metrics(self, registry, prefix: str = "repro_plan_cache") -> None:
        """Fold this cache's counters into ``registry`` at every snapshot.

        ``registry`` is a :class:`repro.obs.MetricsRegistry` (duck-typed —
        this module stays import-free of the observability layer).  A
        pull-style collector is registered: each ``registry.snapshot()`` /
        ``to_prometheus()`` re-reads :attr:`stats` plus the live entry
        count, so the exported ``<prefix>_*`` gauges are always current
        without the cache pushing on its own lookup path.
        """

        def collect(reg) -> None:
            values = self.stats.as_dict()
            values["size"] = len(self)
            reg.set_from_dict(prefix, values)

        registry.add_collector(collect)

    # ------------------------------------------------- warm-start snapshots

    #: Leading magic of a cache snapshot file (format versioning).
    SNAPSHOT_FORMAT = "repro-plan-cache"
    #: Version 2 adds ``entries`` alias records so a plan shared by several
    #: cache keys (structural interning) is written exactly once; version-1
    #: snapshots (artifacts only, one key each) are still readable.
    SNAPSHOT_VERSION = 2
    _READABLE_SNAPSHOT_VERSIONS = (1, 2)

    def artifacts(self) -> List[PlanArtifact]:
        """The cached plans as shippable artifacts, LRU-first.

        The entry list is snapshotted under the lock; the (possibly slow)
        per-plan pickling runs outside it, so a dump does not stall
        concurrent lookups.
        """
        with self._lock:
            entries = list(self._entries.values())
        return [PlanArtifact.from_plan(entry) for entry in entries]

    def dump(self, path: str) -> int:
        """Persist the cache to ``path``; returns the number of plans written.

        The snapshot is keyed by the same stable ``(query text, DTD
        fingerprint, pipeline config)`` keys the live cache uses —
        fingerprints are content hashes, so a snapshot taken by one process
        is valid in any other (or any later restart) seeing the same
        queries and schemas.  A plan object shared by several keys
        (structural interning) is serialized exactly once: the snapshot
        carries the unique artifacts plus ``entries`` alias records
        ``(key, artifact index)``, and :meth:`load` restores the sharing.
        The file is written atomically (temp file + rename): a reader
        never sees a torn snapshot, and a crash mid-dump leaves any
        previous snapshot intact.
        """
        with self._lock:
            items = list(self._entries.items())
            observations = {
                skey: record.as_dict()
                for skey, record in self._observations.items()
            }
        artifacts: List[PlanArtifact] = []
        indexes: Dict[int, int] = {}
        records: List[Tuple[Tuple[str, str, str], int]] = []
        for key, entry in items:
            index = indexes.get(id(entry))
            if index is None:
                index = len(artifacts)
                indexes[id(entry)] = index
                artifacts.append(PlanArtifact.from_plan(entry))
            records.append((key, index))
        payload = pickle.dumps(
            {
                "format": self.SNAPSHOT_FORMAT,
                "version": self.SNAPSHOT_VERSION,
                "artifacts": artifacts,
                "entries": records,
                # Optional sidecar (still version 2: readers ignore unknown
                # keys): observed pass metrics by structure key, so a
                # warm-started cache keeps its cost calibration.
                "observations": observations,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        tmp_path = f"{path}.tmp.{os.getpid()}"
        with open(tmp_path, "wb") as handle:
            handle.write(payload)
        os.replace(tmp_path, path)
        return len(artifacts)

    def load(self, path: str) -> int:
        """Insert the plans snapshotted at ``path``; returns how many.

        Entries are inserted in the snapshot's LRU order (oldest first), so
        when the snapshot exceeds :attr:`capacity` the *most recently used*
        plans of the dumping cache survive the eviction here, like they
        would have in the live cache.  Loaded entries count in
        ``stats.preloaded`` (not hits or misses — no lookup happened); an
        unreadable or wrong-format file raises ``ValueError`` rather than
        silently serving an empty cache.
        """
        try:
            with open(path, "rb") as handle:
                snapshot = pickle.load(handle)
        except (pickle.UnpicklingError, EOFError, AttributeError) as exc:
            raise ValueError(f"{path} is not a plan-cache snapshot: {exc}") from exc
        if (
            not isinstance(snapshot, dict)
            or snapshot.get("format") != self.SNAPSHOT_FORMAT
        ):
            raise ValueError(f"{path} is not a plan-cache snapshot")
        if snapshot.get("version") not in self._READABLE_SNAPSHOT_VERSIONS:
            raise ValueError(
                f"{path} is a version-{snapshot.get('version')} snapshot; "
                f"this build reads versions {self._READABLE_SNAPSHOT_VERSIONS}"
            )
        artifacts: List[PlanArtifact] = list(snapshot["artifacts"])
        plans: List[CompiledQueryPlan] = []
        for artifact in artifacts:
            try:
                entry = artifact.load_plan()
            except ValueError:
                raise
            except Exception as exc:
                # A torn payload, or a snapshot from a build whose plan
                # classes moved: still "not a (usable) snapshot", and the
                # caller's error contract is ValueError, not raw pickle
                # internals.
                raise ValueError(
                    f"{path}: snapshot plan failed to load: {exc}"
                ) from exc
            if cache_key(entry.source, entry.dtd, entry.pipeline_config) != artifact.key:
                raise ValueError(
                    f"{path}: artifact key {artifact.key[:2]} does not match "
                    "its plan (snapshot corrupted or fingerprinting changed)"
                )
            plans.append(entry)
        # Version-1 snapshots (and 2-without-records, defensively) carry no
        # alias records: every artifact fills exactly its own key.
        records = snapshot.get("entries")
        if records is None:
            records = [(artifact.key, i) for i, artifact in enumerate(artifacts)]
        loaded = 0
        for key, index in records:
            if not (0 <= index < len(plans)):
                raise ValueError(
                    f"{path}: entry record {key[:2]} points at artifact "
                    f"{index}, but the snapshot has {len(plans)}"
                )
            entry = plans[index]
            artifact = artifacts[index]
            # An alias key may carry a different query text than the plan
            # it shares, but never a different schema or pipeline: sharing
            # is only valid inside one (DTD fingerprint, config) world.
            if tuple(key[1:]) != artifact.key[1:]:
                raise ValueError(
                    f"{path}: entry record {key[:2]} does not match its "
                    "artifact's fingerprints (snapshot corrupted)"
                )
            skey = structure_key(entry)
            with self._lock:
                self._insert_locked((key[0], key[1], key[2]), entry, skey)
            loaded += 1
        observations = snapshot.get("observations")
        if isinstance(observations, dict):
            with self._lock:
                for skey, values in observations.items():
                    if not isinstance(skey, str) or not isinstance(values, dict):
                        continue
                    record = self._observations.get(skey)
                    if record is None:
                        self._observations[skey] = PlanObservations.from_dict(values)
                        self._observations.move_to_end(skey)
                    else:
                        record.merge(PlanObservations.from_dict(values))
                while len(self._observations) > self.OBSERVATION_LIMIT:
                    self._observations.popitem(last=False)
        with self._lock:
            self.stats.preloaded += loaded
        return loaded
