"""XSAX — the validating SAX parser with ``on-first`` events.

"The streamed query evaluator ... uses our validating SAX parser, XSAX,
which is an extension of a standard SAX parser that in addition produces
on-first events in addition to customary SAX-events. ... We first register
the DTD and all on-first event handlers of the input query with the XSAX
parser.  Based on this information, the XSAX parser builds a finite state
automaton and lookup-tables for validating the input and generating on-first
events."  (Section 3.2 of the paper.)

The implementation mirrors that description:

* conditions (an element type plus a set of child labels) are registered in
  a :class:`ConditionRegistry` before parsing starts;
* :class:`XSAXReader` wraps any ordinary event stream, maintains one
  content-model automaton state per open element (which doubles as
  validation), and inserts :class:`OnFirstEvent` notifications into the
  stream at the earliest position the DTD implies that none of the
  condition's labels can occur among the remaining children:

  - immediately after an element's start tag, when the condition holds
    vacuously (e.g. the labels cannot occur at all);
  - immediately **before** the start tag of the child whose arrival makes
    the condition true (so the consumer can still decide whether to handle
    that child before or after firing, preserving output order);
  - immediately before the element's end tag, for conditions that only
    become certain when the element closes (this is also the fallback when
    no DTD is available).

The document itself is treated as a pseudo-element whose content model has
the root element as its single child, so top-level conditions work the same
way as everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.errors import XMLValidationError
from repro.dtd.schema import DTD
from repro.runtime.stats import RuntimeStats
from repro.xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)
from repro.xquery.analysis import DOCUMENT_TYPE, WHOLE_SUBTREE


@dataclass(frozen=True)
class OnFirstEvent(Event):
    """Inserted into the stream when a registered ``past`` condition holds.

    ``condition_id`` identifies the registered condition; ``element_type``
    and ``labels`` are carried for debugging and tests.
    """

    condition_id: int
    element_type: str
    labels: FrozenSet[str]

    def size_estimate(self) -> int:
        return 8


class ConditionRegistry:
    """Registry of ``on-first past(labels)`` conditions per element type."""

    def __init__(self) -> None:
        self._ids: Dict[Tuple[str, FrozenSet[str]], int] = {}
        self._by_type: Dict[str, List[Tuple[int, FrozenSet[str]]]] = {}

    def register(self, element_type: str, labels: FrozenSet[str]) -> int:
        """Register a condition, returning its (deduplicated) id."""
        key = (element_type, labels)
        if key in self._ids:
            return self._ids[key]
        condition_id = len(self._ids)
        self._ids[key] = condition_id
        self._by_type.setdefault(element_type, []).append((condition_id, labels))
        return condition_id

    def conditions_for(self, element_type: str) -> List[Tuple[int, FrozenSet[str]]]:
        """All registered conditions for ``element_type``."""
        return list(self._by_type.get(element_type, []))

    def element_types(self) -> List[str]:
        """Element types that have at least one registered condition.

        The multi-query dispatcher uses this: children of such elements must
        always be forwarded, because every child start tag steps the
        element's content-model automaton and thereby decides *when* the
        condition's on-first event fires.
        """
        return list(self._by_type)

    def __len__(self) -> int:
        return len(self._ids)


class _OpenElement:
    """XSAX bookkeeping for one open element."""

    __slots__ = ("name", "state", "pending")

    def __init__(self, name: str, state: Optional[int], pending: List[Tuple[int, FrozenSet[str]]]):
        self.name = name
        self.state = state
        # Conditions registered for this element type that have not fired yet.
        self.pending = pending


class XSAXReader:
    """Iterator over an event stream augmented with ``on-first`` events.

    Parameters
    ----------
    events:
        The underlying event stream (typically
        :func:`repro.xmlstream.parser.parse_events`).
    dtd:
        The schema; ``None`` disables early firing (conditions then fire just
        before the closing tag) and validation.
    conditions:
        The registered ``on-first`` conditions.
    validate:
        When true (default) the reader raises
        :class:`~repro.errors.XMLValidationError` on documents that violate
        the DTD, exactly like the streaming validator.
    stats:
        Optional statistics sink (event counters).
    """

    def __init__(
        self,
        events: Iterable[Event],
        dtd: Optional[DTD],
        conditions: Optional[ConditionRegistry] = None,
        validate: bool = True,
        stats: Optional[RuntimeStats] = None,
    ):
        self._events = iter(events)
        self._dtd = dtd
        self._conditions = conditions if conditions is not None else ConditionRegistry()
        self._validate = validate
        self._stats = stats
        self._stack: List[_OpenElement] = []
        self._queue: List[Event] = []
        self._started = False

    # ------------------------------------------------------------ iterator

    def __iter__(self) -> Iterator[Event]:
        return self

    def __next__(self) -> Event:
        if self._queue:
            event = self._queue.pop(0)
        else:
            event = self._advance()
        if self._stats is not None:
            self._stats.events_processed += 1
            if isinstance(event, OnFirstEvent):
                self._stats.onfirst_events += 1
            elif isinstance(event, StartElement):
                self._stats.elements_parsed += 1
        return event

    def _advance(self) -> Event:
        event = next(self._events)
        if isinstance(event, StartDocument):
            self._open_document()
            return event
        if isinstance(event, EndDocument):
            return self._close_document(event)
        if isinstance(event, StartElement):
            return self._handle_start(event)
        if isinstance(event, EndElement):
            return self._handle_end(event)
        return event

    # ------------------------------------------------------------ document

    def _open_document(self) -> None:
        pending = self._conditions.conditions_for(DOCUMENT_TYPE)
        self._stack.append(_OpenElement(DOCUMENT_TYPE, 0, list(pending)))
        # Conditions that hold before the root element arrives (empty label
        # sets or labels other than the root).
        self._fire_satisfied(self._stack[-1], after=True)

    def _close_document(self, event: EndDocument) -> Event:
        if not self._stack:
            return event
        document = self._stack.pop()
        remaining = [
            OnFirstEvent(condition_id, document.name, labels)
            for condition_id, labels in document.pending
        ]
        document.pending = []
        if remaining:
            self._queue = remaining[1:] + [event] + self._queue
            return remaining[0]
        return event

    # ------------------------------------------------------------- element

    def _handle_start(self, event: StartElement) -> Event:
        fired_before: List[Event] = []
        if self._stack:
            parent = self._stack[-1]
            self._step_parent(parent, event.name)
            fired_before = self._collect_satisfied(parent)
        child_pending = self._conditions.conditions_for(event.name)
        element = _OpenElement(event.name, self._initial_state(event.name), list(child_pending))
        self._stack.append(element)
        # Conditions on the new element that hold immediately.
        fired_after = self._collect_satisfied(element)
        if fired_before:
            # The on-first events precede the triggering start tag.
            self._queue = fired_before[1:] + [event] + fired_after + self._queue
            return fired_before[0]
        if fired_after:
            self._queue = fired_after + self._queue
        return event

    def _handle_end(self, event: EndElement) -> Event:
        if not self._stack:
            raise XMLValidationError(f"unexpected closing tag </{event.name}>")
        element = self._stack.pop()
        if element.name == DOCUMENT_TYPE:
            raise XMLValidationError(f"unexpected closing tag </{event.name}>")
        if element.name != event.name:
            raise XMLValidationError(
                f"closing tag </{event.name}> does not match open element <{element.name}>"
            )
        if self._validate and self._dtd is not None and element.state is not None:
            automaton = self._dtd.automaton(element.name)
            if not automaton.is_accepting(element.state):
                raise XMLValidationError(
                    f"element <{element.name}> closed with incomplete content"
                )
        remaining = [
            OnFirstEvent(condition_id, element.name, labels)
            for condition_id, labels in element.pending
        ]
        element.pending = []
        if remaining:
            self._queue = remaining[1:] + [event] + self._queue
            return remaining[0]
        return event

    # ------------------------------------------------------------- helpers

    def _initial_state(self, name: str) -> Optional[int]:
        if self._dtd is not None and self._dtd.has_element(name):
            return self._dtd.automaton(name).start_state
        return None

    def _step_parent(self, parent: _OpenElement, child_name: str) -> None:
        if parent.name == DOCUMENT_TYPE:
            if self._validate and self._dtd is not None and child_name != self._dtd.root:
                raise XMLValidationError(
                    f"root element is <{child_name}>, expected <{self._dtd.root}>"
                )
            parent.state = 1  # the single child has been seen
            return
        if self._dtd is None or parent.state is None:
            return
        if not self._dtd.has_element(parent.name):
            return
        automaton = self._dtd.automaton(parent.name)
        next_state = automaton.step(parent.state, child_name)
        if next_state is None:
            if self._validate:
                raise XMLValidationError(
                    f"element <{child_name}> is not allowed here inside <{parent.name}>"
                )
            return
        parent.state = next_state

    def _condition_holds(self, element: _OpenElement, labels: FrozenSet[str]) -> bool:
        """Whether no label of ``labels`` can occur among the remaining
        children of ``element``."""
        if not labels:
            return True
        if WHOLE_SUBTREE in labels:
            return False
        if element.name == DOCUMENT_TYPE:
            if self._dtd is None:
                return False
            root_needed = self._dtd.root in labels
            if not root_needed:
                return True
            return element.state == 1
        if self._dtd is None or element.state is None or not self._dtd.has_element(element.name):
            return False
        automaton = self._dtd.automaton(element.name)
        return not automaton.can_still_occur(element.state, labels)

    def _collect_satisfied(self, element: _OpenElement) -> List[Event]:
        fired: List[Event] = []
        still_pending: List[Tuple[int, FrozenSet[str]]] = []
        for condition_id, labels in element.pending:
            if self._condition_holds(element, labels):
                fired.append(OnFirstEvent(condition_id, element.name, labels))
            else:
                still_pending.append((condition_id, labels))
        element.pending = still_pending
        return fired

    def _fire_satisfied(self, element: _OpenElement, after: bool) -> None:
        fired = self._collect_satisfied(element)
        if fired:
            if after:
                self._queue.extend(fired)
            else:
                self._queue = fired + self._queue

    def _fire_all(self, element: _OpenElement, front: bool) -> None:
        fired = [
            OnFirstEvent(condition_id, element.name, labels)
            for condition_id, labels in element.pending
        ]
        element.pending = []
        if fired:
            if front:
                self._queue = fired + self._queue
            else:
                self._queue.extend(fired)
