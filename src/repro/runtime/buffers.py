"""Buffer management for the streamed runtime.

"By allowing for the conscious use of main memory buffers, [FluX] supports
reasoning over the employment of buffers during query evaluation."  At
runtime that reasoning materializes here: every byte an engine retains goes
through the :class:`BufferManager`, which keeps the running and peak totals
reported by the benchmarks.

Two kinds of objects are managed:

* **scope buffers** — for each active ``process-stream`` variable, the
  materialized child subtrees of the labels the buffer description forest
  marked as needed (plus, when a whole-subtree dependency exists, the fully
  materialized element);
* **transient materializations** — subtrees materialized to dispatch an
  ``on`` handler whose element also had to be buffered, and whole documents
  or projected documents accounted by the baseline engines.

:class:`StreamScopeNode` adapts a scope (attributes from the start tag plus
the buffered children) to the node-navigation protocol of the tree
evaluator, so buffered ``on-first`` bodies evaluate against buffers without
any special cases in the evaluator.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.errors import BufferError_
from repro.runtime.stats import RuntimeStats
from repro.xmlstream.tree import XMLElement, XMLNode, XMLText


class BufferManager:
    """Central accounting of buffered bytes.

    All sizes are the ``size_estimate`` of the buffered trees (text length
    plus a small per-node constant), which makes numbers comparable across
    the FluX, projection, and DOM engines.
    """

    def __init__(self, stats: Optional[RuntimeStats] = None):
        self.stats = stats if stats is not None else RuntimeStats()
        self._live_bytes = 0

    @property
    def current_bytes(self) -> int:
        """Bytes currently held in buffers."""
        return self._live_bytes

    @property
    def peak_bytes(self) -> int:
        """Largest number of bytes ever held simultaneously."""
        return self.stats.peak_buffer_bytes

    def account_tree(self, node: XMLElement) -> int:
        """Account a freshly materialized subtree; returns its size."""
        size = node.size_estimate()
        self.grow(size)
        self.stats.buffered_nodes += node.node_count()
        return size

    def grow(self, amount: int) -> None:
        """Record ``amount`` new buffered bytes."""
        if amount < 0:
            raise BufferError_("buffer growth must be non-negative")
        self._live_bytes += amount
        self.stats.buffer_grow(amount)

    def release(self, amount: int) -> None:
        """Record that ``amount`` buffered bytes were freed."""
        if amount < 0:
            raise BufferError_("buffer release must be non-negative")
        self._live_bytes = max(0, self._live_bytes - amount)
        self.stats.buffer_shrink(amount)


class ScopeBuffers:
    """Buffers attached to one ``process-stream`` scope instance.

    Holds the materialized children per label and, when requested, the whole
    element; releases everything (and tells the manager) when the scope
    closes.
    """

    def __init__(self, manager: BufferManager):
        self._manager = manager
        self._by_label: Dict[str, List[XMLElement]] = {}
        self._bytes = 0
        self.full_element: Optional[XMLElement] = None
        self._closed = False

    def add_child(self, label: str, subtree: XMLElement) -> None:
        """Buffer a materialized child subtree under ``label``."""
        self._ensure_open()
        self._by_label.setdefault(label, []).append(subtree)
        self._bytes += self._manager.account_tree(subtree)

    def set_full_element(self, element: XMLElement) -> None:
        """Record the fully materialized element (whole-subtree buffering)."""
        self._ensure_open()
        self.full_element = element
        self._bytes += self._manager.account_tree(element)

    def ensure_full_element(self, tag: str, attrs: Dict[str, str]) -> XMLElement:
        """Create (once) the skeleton element used for incremental
        whole-subtree buffering and return it."""
        self._ensure_open()
        if self.full_element is None:
            self.full_element = XMLElement(tag, dict(attrs))
            size = self.full_element.size_estimate()
            self._bytes += size
            self._manager.grow(size)
        return self.full_element

    def append_full_child(self, subtree: XMLElement) -> None:
        """Append a materialized child to the whole-subtree buffer."""
        self._ensure_open()
        if self.full_element is None:
            raise BufferError_("ensure_full_element must be called first")
        self.full_element.append(subtree)
        self._bytes += self._manager.account_tree(subtree)

    def append_full_text(self, text: str) -> None:
        """Append character data to the whole-subtree buffer."""
        self._ensure_open()
        if self.full_element is None:
            raise BufferError_("ensure_full_element must be called first")
        self.full_element.append_text(text)
        self._bytes += len(text)
        self._manager.grow(len(text))

    def children_for(self, label: str) -> List[XMLElement]:
        """Buffered children with the given label (possibly empty)."""
        return self._by_label.get(label, [])

    def all_children(self) -> List[XMLElement]:
        """All buffered children, grouped by label."""
        result: List[XMLElement] = []
        for children in self._by_label.values():
            result.extend(children)
        return result

    @property
    def buffered_bytes(self) -> int:
        return self._bytes

    def close(self) -> None:
        """Release every buffer of this scope."""
        if self._closed:
            return
        self._closed = True
        self._manager.release(self._bytes)
        self._by_label.clear()
        self.full_element = None
        self._bytes = 0

    def _ensure_open(self) -> None:
        if self._closed:
            raise BufferError_("cannot add to a closed scope buffer")


class StreamScopeNode:
    """Node-protocol adapter over a stream scope.

    The tree evaluator navigates nodes through ``child_elements``,
    ``descendants``, ``get``, ``string_value`` and ``children``; this adapter
    answers those calls from the scope's start-tag attributes and buffered
    children, so buffered sub-expressions are evaluated with the ordinary
    evaluator.

    Limitations (by design, matching what the scheduler guarantees): when
    only selected labels were buffered, children of other labels appear
    empty, and document order *across different labels* is not preserved —
    the scheduler only evaluates per-label paths against such scopes.
    """

    def __init__(self, tag: str, attrs: Dict[str, str], buffers: ScopeBuffers):
        self.tag = tag
        self.attrs = dict(attrs)
        self._buffers = buffers

    # ------------------------------------------------------- navigation API

    @property
    def children(self) -> List[XMLNode]:
        if self._buffers.full_element is not None:
            return self._buffers.full_element.children
        return list(self._buffers.all_children())

    def child_elements(self, tag: Optional[str] = None) -> List[XMLElement]:
        if self._buffers.full_element is not None:
            return self._buffers.full_element.child_elements(tag)
        if tag is None or tag == "*":
            return self._buffers.all_children()
        return self._buffers.children_for(tag)

    def first_child(self, tag: str) -> Optional[XMLElement]:
        children = self.child_elements(tag)
        return children[0] if children else None

    def descendants(self, tag: Optional[str] = None) -> Iterator[XMLElement]:
        if self._buffers.full_element is not None:
            yield from self._buffers.full_element.descendants(tag)
            return
        for child in self.child_elements(None):
            if tag is None or tag == "*" or child.tag == tag:
                yield child
            yield from child.descendants(tag)

    def get(self, attr: str, default: Optional[str] = None) -> Optional[str]:
        return self.attrs.get(attr, default)

    def string_value(self) -> str:
        if self._buffers.full_element is not None:
            return self._buffers.full_element.string_value()
        return "".join(child.string_value() for child in self.child_elements(None))

    def size_estimate(self) -> int:
        return self._buffers.buffered_bytes

    def node_count(self) -> int:
        return 1 + sum(child.node_count() for child in self.child_elements(None))

    # ------------------------------------------------------------- exports

    def to_element(self) -> XMLElement:
        """Materialize the scope as a plain element (used for deep copies)."""
        if self._buffers.full_element is not None:
            element = XMLElement(self.tag, dict(self.attrs))
            for child in self._buffers.full_element.children:
                if isinstance(child, XMLText):
                    element.append_text(child.text)
                else:
                    element.append(child)
            return element
        element = XMLElement(self.tag, dict(self.attrs))
        for child in self.child_elements(None):
            element.append(child)
        return element

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StreamScopeNode(<{self.tag}>, {self._buffers.buffered_bytes} B buffered)"
