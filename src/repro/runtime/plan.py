"""Physical query plan operators.

The query compiler (:mod:`repro.runtime.compiler`) translates a FluX query
into a tree of the operators defined here.  The operators mirror the FluX
AST but carry everything the streamed evaluator needs precomputed:

* ``ProcessStreamOp`` knows, per child label, which handler consumes it
  (``on_index``), which labels must be buffered (from the BDF), whether the
  whole element must be materialized, and the registered XSAX condition id of
  every ``on-first`` handler;
* handler order is explicit (``index``), because output order is defined by
  the original XQuery sequence order and the evaluator fires ``on-first``
  handlers strictly in that order.

The plan is interpreted by :class:`repro.runtime.evaluator.StreamedEvaluator`
(the paper also offers compilation to Java code; interpretation is the
semantics-bearing path we reproduce).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from repro.xquery.ast import XQueryExpr


class PlanOp:
    """Base class of physical plan operators."""

    __slots__ = ()

    def children(self) -> Tuple["PlanOp", ...]:
        return ()

    def operator_count(self) -> int:
        """Total number of operators in this subtree (for plan statistics)."""
        return 1 + sum(child.operator_count() for child in self.children())


@dataclass(frozen=True)
class SequenceOp(PlanOp):
    """Evaluate the items in order."""

    items: Tuple[PlanOp, ...]

    def children(self) -> Tuple[PlanOp, ...]:
        return self.items


@dataclass(frozen=True)
class TextOp(PlanOp):
    """Emit literal text."""

    text: str


@dataclass(frozen=True)
class ConstructorOp(PlanOp):
    """Emit a start tag, evaluate the content, emit the end tag."""

    name: str
    attributes: Tuple[Tuple[str, str], ...]
    content: PlanOp

    def children(self) -> Tuple[PlanOp, ...]:
        return (self.content,)


@dataclass(frozen=True)
class CopyVarOp(PlanOp):
    """Deep-copy the node bound to ``var`` to the output (streaming when the
    node is the active, unconsumed stream element)."""

    var: str


@dataclass(frozen=True)
class BufferedEvalOp(PlanOp):
    """Evaluate an embedded XQuery expression against buffers/bindings and
    serialize its result."""

    expr: XQueryExpr


@dataclass(frozen=True)
class IfOp(PlanOp):
    """Conditional over already-available data."""

    condition: XQueryExpr
    then_branch: PlanOp
    else_branch: PlanOp

    def children(self) -> Tuple[PlanOp, ...]:
        return (self.then_branch, self.else_branch)


@dataclass(frozen=True)
class OnHandlerOp(PlanOp):
    """A streaming ``on label as $var`` handler."""

    index: int
    label: str
    var: str
    body: PlanOp

    def children(self) -> Tuple[PlanOp, ...]:
        return (self.body,)


@dataclass(frozen=True)
class OnFirstHandlerOp(PlanOp):
    """An ``on-first past(labels)`` handler.

    ``condition_id`` is the XSAX registration; ``None`` means the condition
    can never fire early (no DTD knowledge or a whole-subtree dependency) and
    the handler runs when the element closes.  ``always_satisfied`` marks the
    empty condition (fires as soon as output order permits).
    """

    index: int
    labels: FrozenSet[str]
    condition_id: Optional[int]
    always_satisfied: bool
    body: PlanOp

    def children(self) -> Tuple[PlanOp, ...]:
        return (self.body,)


HandlerOp = Union[OnHandlerOp, OnFirstHandlerOp]


@dataclass(frozen=True)
class ProcessStreamOp(PlanOp):
    """Consume the children of the element bound to ``var``."""

    var: str
    element_type: str
    handlers: Tuple[HandlerOp, ...]
    #: child label -> index of the ``on`` handler that consumes it
    on_index: Dict[str, int]
    #: child labels that must be materialized into scope buffers
    buffer_labels: FrozenSet[str]
    #: whether the whole element (children and text) must be materialized
    buffer_whole: bool

    def children(self) -> Tuple[PlanOp, ...]:
        return self.handlers

    def handler_for(self, label: str) -> Optional[int]:
        """Index of the streaming handler for ``label`` (``None`` if absent)."""
        return self.on_index.get(label)


@dataclass
class PhysicalPlan:
    """A compiled FluX query, ready for streamed evaluation."""

    root: PlanOp
    conditions: "ConditionRegistry"
    bdf: "BufferDescriptionForest"
    dtd: Optional[object] = None

    def operator_count(self) -> int:
        return self.root.operator_count()

    def describe(self) -> str:
        """Short human-readable plan summary."""
        from repro.runtime.bdf import BufferDescriptionForest  # noqa: F401

        lines = [
            f"physical plan: {self.operator_count()} operators, "
            f"{len(self.conditions)} registered on-first conditions",
            "buffer description forest:",
            self.bdf.describe(),
        ]
        return "\n".join(lines)
