"""Query compiler: FluX query → physical plan.

"The query compiler transforms an optimized FluX query into a physical query
plan.  It first computes the buffer description forest data structure, BDF
for short, which defines those paths of the input document which need to be
buffered.  Based on the BDF, it schedules query operators, such as the
execution of process-stream expressions, the streamed execution of
for-where-return-statements, and buffer population."  (Section 3.2.)

Concretely the compiler

1. computes the BDF of the query (:func:`repro.runtime.bdf.build_bdf`),
2. registers every ``on-first`` condition with the XSAX
   :class:`~repro.runtime.xsax.ConditionRegistry`,
3. translates every FluX node into its physical operator, attaching the BDF
   entry and the handler dispatch table to each ``process-stream``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from repro.core.optimizer import OptimizedQuery, OptimizerPipeline
from repro.dtd.schema import DTD
from repro.core.flux import (
    FBufferedExpr,
    FConstructor,
    FCopyVar,
    FIf,
    FluxExpr,
    FluxQuery,
    FProcessStream,
    FSequence,
    FText,
    OnFirstHandler,
    OnHandler,
)
from repro.errors import PlanError
from repro.runtime.bdf import BufferDescriptionForest, build_bdf
from repro.runtime.plan import (
    BufferedEvalOp,
    ConstructorOp,
    CopyVarOp,
    HandlerOp,
    IfOp,
    OnFirstHandlerOp,
    OnHandlerOp,
    PhysicalPlan,
    PlanOp,
    ProcessStreamOp,
    SequenceOp,
    TextOp,
)
from repro.runtime.xsax import ConditionRegistry
from repro.xquery.analysis import DOCUMENT_TYPE, WHOLE_SUBTREE


class QueryCompiler:
    """Compiles FluX queries into physical plans."""

    def __init__(self, dtd: Optional[DTD] = None):
        self.dtd = dtd

    def compile(self, query: FluxQuery) -> PhysicalPlan:
        """Compile ``query`` (using its own DTD unless one was supplied)."""
        dtd = self.dtd if self.dtd is not None else query.dtd
        bdf = build_bdf(query)
        registry = ConditionRegistry()
        root = self._compile_expr(query.body, bdf, registry, dtd)
        return PhysicalPlan(root=root, conditions=registry, bdf=bdf, dtd=dtd)

    # ------------------------------------------------------------ internal

    def _compile_expr(
        self,
        expr: FluxExpr,
        bdf: BufferDescriptionForest,
        registry: ConditionRegistry,
        dtd: Optional[DTD],
    ) -> PlanOp:
        if isinstance(expr, FSequence):
            return SequenceOp(
                tuple(self._compile_expr(item, bdf, registry, dtd) for item in expr.items)
            )
        if isinstance(expr, FText):
            return TextOp(expr.text)
        if isinstance(expr, FConstructor):
            return ConstructorOp(
                expr.name,
                expr.attributes,
                self._compile_expr(expr.content, bdf, registry, dtd),
            )
        if isinstance(expr, FCopyVar):
            return CopyVarOp(expr.var)
        if isinstance(expr, FBufferedExpr):
            return BufferedEvalOp(expr.expr)
        if isinstance(expr, FIf):
            return IfOp(
                expr.condition,
                self._compile_expr(expr.then_branch, bdf, registry, dtd),
                self._compile_expr(expr.else_branch, bdf, registry, dtd),
            )
        if isinstance(expr, FProcessStream):
            return self._compile_process_stream(expr, bdf, registry, dtd)
        raise PlanError(f"cannot compile FluX node {expr!r}")

    def _compile_process_stream(
        self,
        node: FProcessStream,
        bdf: BufferDescriptionForest,
        registry: ConditionRegistry,
        dtd: Optional[DTD],
    ) -> ProcessStreamOp:
        handlers: Tuple[HandlerOp, ...] = ()
        on_index: Dict[str, int] = {}
        compiled: list = []
        for index, handler in enumerate(node.handlers):
            if isinstance(handler, OnHandler):
                if handler.label in on_index:
                    raise PlanError(
                        f"process-stream ${node.var} has two streaming handlers "
                        f"for label {handler.label!r}"
                    )
                on_index[handler.label] = index
                compiled.append(
                    OnHandlerOp(
                        index=index,
                        label=handler.label,
                        var=handler.var,
                        body=self._compile_expr(handler.body, bdf, registry, dtd),
                    )
                )
            else:
                compiled.append(
                    self._compile_on_first(handler, index, node, registry, dtd, bdf)
                )
        handlers = tuple(compiled)
        spec = bdf.get(node.var)
        buffer_labels: FrozenSet[str] = frozenset(spec.labels) if spec is not None else frozenset()
        buffer_whole = bool(spec.whole_subtree) if spec is not None else False
        return ProcessStreamOp(
            var=node.var,
            element_type=node.element_type,
            handlers=handlers,
            on_index=on_index,
            buffer_labels=buffer_labels,
            buffer_whole=buffer_whole,
        )

    def _compile_on_first(
        self,
        handler: OnFirstHandler,
        index: int,
        node: FProcessStream,
        registry: ConditionRegistry,
        dtd: Optional[DTD],
        bdf: BufferDescriptionForest,
    ) -> OnFirstHandlerOp:
        labels = handler.past_labels
        always_satisfied = not labels
        condition_id: Optional[int] = None
        fire_early_possible = (
            dtd is not None
            and not always_satisfied
            and WHOLE_SUBTREE not in labels
        )
        if fire_early_possible:
            condition_id = registry.register(node.element_type, labels)
        return OnFirstHandlerOp(
            index=index,
            labels=labels,
            condition_id=condition_id,
            always_satisfied=always_satisfied,
            body=self._compile_expr(handler.body, bdf, registry, dtd),
        )


def compile_flux(query: FluxQuery, dtd: Optional[DTD] = None) -> PhysicalPlan:
    """Convenience wrapper around :class:`QueryCompiler`."""
    return QueryCompiler(dtd).compile(query)


@dataclass
class CompiledQueryPlan:
    """End-to-end compilation artefact: XQuery text → physical plan.

    Bundles the optimizer output with the executable plan so callers that
    cache compilations (``FluxEngine``, the service plan cache) share one
    unit.  The same object can be executed any number of times, concurrently:
    all per-run state lives in the evaluator, not the plan.
    """

    source: str
    optimized: OptimizedQuery
    plan: PhysicalPlan
    #: Configuration digest of the pipeline that produced the plan (see
    #: :meth:`OptimizerPipeline.config_fingerprint`); part of cache keys.
    pipeline_config: str = ""

    @property
    def dtd(self) -> Optional[DTD]:
        return self.plan.dtd

    @property
    def flux_syntax(self) -> str:
        """The optimized query rendered in FluX syntax."""
        return self.optimized.flux.to_flux_syntax()

    @property
    def buffer_description(self) -> str:
        """The buffer description forest of the compiled plan."""
        return self.plan.bdf.describe()


def compile_query(
    query: str,
    dtd: Optional[DTD] = None,
    pipeline: Optional[OptimizerPipeline] = None,
) -> CompiledQueryPlan:
    """Compile XQuery text through the full pipeline into an executable plan.

    ``pipeline`` lets callers reuse a configured :class:`OptimizerPipeline`
    (ablation switches, shared DTD); otherwise one is built from ``dtd``.
    """
    if pipeline is None:
        pipeline = OptimizerPipeline(dtd)
    optimized = pipeline.compile(query)
    plan = QueryCompiler(pipeline.dtd).compile(optimized.flux)
    return CompiledQueryPlan(
        source=query,
        optimized=optimized,
        plan=plan,
        pipeline_config=pipeline.config_fingerprint(),
    )
