"""Static analysis over XQuery ASTs.

The optimizer and the FluX scheduler need a handful of classical analyses:

* :func:`free_variables` — which variables an expression references but does
  not bind;
* :func:`substitute_variable` — capture-avoiding substitution, used to
  eliminate ``let`` bindings during normalization;
* :func:`child_label_dependencies` — for a given stream variable, which child
  labels (first path steps) an expression touches; this is the ``dep`` set of
  the scheduling algorithm and the basis of the buffer description forest;
* :func:`variable_element_types` — a static type environment mapping each
  loop variable to the DTD element type it ranges over, which is what makes
  cardinality/order/co-occurrence constraints applicable to paths.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.dtd.schema import DTD
from repro.xquery.ast import (
    AndExpr,
    AttributeStep,
    ChildStep,
    Comparison,
    DescendantStep,
    DOCUMENT_VARIABLE,
    ElementConstructor,
    EmptySequence,
    ForExpr,
    FunctionCall,
    IfExpr,
    LetExpr,
    Literal,
    NotExpr,
    OrExpr,
    PathExpr,
    SequenceExpr,
    TextStep,
    VarRef,
    XQueryExpr,
)

#: Marker meaning "the whole subtree of the variable is needed" (e.g. the
#: variable is copied to the output, or reached through a descendant step).
WHOLE_SUBTREE = "*"

#: Pseudo element type of the document node (parent of the root element).
DOCUMENT_TYPE = "#document"

_fresh_counter = itertools.count(1)


def fresh_variable(prefix: str = "v") -> str:
    """Return a globally fresh variable name (used by rewrites)."""
    return f"__{prefix}{next(_fresh_counter)}"


# ----------------------------------------------------------- free variables


def free_variables(expr: XQueryExpr) -> FrozenSet[str]:
    """Variables referenced by ``expr`` that are not bound within it."""
    return _free(expr, frozenset())


def _free(expr: XQueryExpr, bound: FrozenSet[str]) -> FrozenSet[str]:
    if isinstance(expr, VarRef):
        return frozenset() if expr.name in bound else frozenset({expr.name})
    if isinstance(expr, PathExpr):
        return frozenset() if expr.var in bound else frozenset({expr.var})
    if isinstance(expr, ForExpr):
        result = _free(expr.source, bound)
        inner_bound = bound | {expr.var}
        if expr.where is not None:
            result |= _free(expr.where, inner_bound)
        return result | _free(expr.body, inner_bound)
    if isinstance(expr, LetExpr):
        return _free(expr.value, bound) | _free(expr.body, bound | {expr.var})
    result: FrozenSet[str] = frozenset()
    for child in expr.children():
        result |= _free(child, bound)
    return result


# ------------------------------------------------------------- substitution


def substitute_variable(expr: XQueryExpr, var: str, replacement: XQueryExpr) -> XQueryExpr:
    """Replace free occurrences of ``$var`` in ``expr`` by ``replacement``.

    Substitution into a :class:`PathExpr` rooted at ``$var`` is supported when
    the replacement is itself a variable or a path (the path is re-rooted);
    other replacements under a path raise ``ValueError`` — the normal-form
    pass only ever substitutes variables and paths.
    """
    if isinstance(expr, VarRef):
        return replacement if expr.name == var else expr
    if isinstance(expr, PathExpr):
        if expr.var != var:
            return expr
        if isinstance(replacement, VarRef):
            return PathExpr(replacement.name, expr.steps)
        if isinstance(replacement, PathExpr):
            return PathExpr(replacement.var, replacement.steps + expr.steps)
        raise ValueError(
            f"cannot substitute {replacement!r} into a path rooted at ${var}"
        )
    if isinstance(expr, ForExpr):
        source = substitute_variable(expr.source, var, replacement)
        if expr.var == var:
            return ForExpr(expr.var, source, expr.body, expr.where)
        where = (
            substitute_variable(expr.where, var, replacement)
            if expr.where is not None
            else None
        )
        return ForExpr(expr.var, source, substitute_variable(expr.body, var, replacement), where)
    if isinstance(expr, LetExpr):
        value = substitute_variable(expr.value, var, replacement)
        if expr.var == var:
            return LetExpr(expr.var, value, expr.body)
        return LetExpr(expr.var, value, substitute_variable(expr.body, var, replacement))
    if isinstance(expr, SequenceExpr):
        return SequenceExpr(
            tuple(substitute_variable(item, var, replacement) for item in expr.items)
        )
    if isinstance(expr, IfExpr):
        return IfExpr(
            substitute_variable(expr.condition, var, replacement),
            substitute_variable(expr.then_branch, var, replacement),
            substitute_variable(expr.else_branch, var, replacement),
        )
    if isinstance(expr, ElementConstructor):
        return ElementConstructor(
            expr.name, expr.attributes, substitute_variable(expr.content, var, replacement)
        )
    if isinstance(expr, Comparison):
        return Comparison(
            expr.op,
            substitute_variable(expr.left, var, replacement),
            substitute_variable(expr.right, var, replacement),
        )
    if isinstance(expr, AndExpr):
        return AndExpr(
            tuple(substitute_variable(operand, var, replacement) for operand in expr.operands)
        )
    if isinstance(expr, OrExpr):
        return OrExpr(
            tuple(substitute_variable(operand, var, replacement) for operand in expr.operands)
        )
    if isinstance(expr, NotExpr):
        return NotExpr(substitute_variable(expr.operand, var, replacement))
    if isinstance(expr, FunctionCall):
        return FunctionCall(
            expr.name,
            tuple(substitute_variable(argument, var, replacement) for argument in expr.arguments),
        )
    return expr


# ----------------------------------------------------- child-label analysis


def child_label_dependencies(expr: XQueryExpr, var: str) -> FrozenSet[str]:
    """The ``dep`` set of the scheduling algorithm.

    Returns the set of child labels of ``$var`` that ``expr`` reads:

    * a path ``$var/l/...`` contributes ``l``;
    * ``$var`` itself (a bare variable reference), ``$var//...``,
      ``$var/*``, or ``$var/text()`` contribute the :data:`WHOLE_SUBTREE`
      marker (the entire element is needed);
    * attribute-only access ``$var/@a`` contributes nothing — attributes are
      available from the start tag and never require buffering.

    Bindings that shadow ``var`` (an inner ``for``/``let`` re-using the same
    name) are respected.
    """
    result: Set[str] = set()
    _collect_deps(expr, var, result)
    if WHOLE_SUBTREE in result:
        return frozenset({WHOLE_SUBTREE})
    return frozenset(result)


def _collect_deps(expr: XQueryExpr, var: str, out: Set[str]) -> None:
    if isinstance(expr, VarRef):
        if expr.name == var:
            out.add(WHOLE_SUBTREE)
        return
    if isinstance(expr, PathExpr):
        if expr.var != var:
            return
        if not expr.steps:
            out.add(WHOLE_SUBTREE)
            return
        first = expr.steps[0]
        if isinstance(first, AttributeStep):
            return
        if isinstance(first, ChildStep) and first.name != "*":
            out.add(first.name)
            return
        # Descendant, wildcard or text() as the first step: whole subtree.
        out.add(WHOLE_SUBTREE)
        return
    if isinstance(expr, ForExpr):
        _collect_deps(expr.source, var, out)
        if expr.var == var:
            return
        if expr.where is not None:
            _collect_deps(expr.where, var, out)
        _collect_deps(expr.body, var, out)
        return
    if isinstance(expr, LetExpr):
        _collect_deps(expr.value, var, out)
        if expr.var == var:
            return
        _collect_deps(expr.body, var, out)
        return
    for child in expr.children():
        _collect_deps(child, var, out)


def depends_on_variable(expr: XQueryExpr, var: str) -> bool:
    """Whether ``expr`` references ``$var`` (its children, attributes, or the
    node itself)."""
    return var in free_variables(expr)


def depends_on_children(expr: XQueryExpr, var: str) -> bool:
    """Whether ``expr`` needs anything from ``$var``'s *content* (child
    elements, text, or the whole subtree) — attribute access does not count."""
    return bool(child_label_dependencies(expr, var))


# ------------------------------------------------------------ element types


def variable_element_types(
    expr: XQueryExpr, dtd: Optional[DTD], initial: Optional[Dict[str, str]] = None
) -> Dict[str, str]:
    """Infer the DTD element type each variable ranges over.

    The document variable ``$ROOT`` has the pseudo-type
    :data:`DOCUMENT_TYPE`; a loop ``for $x in $y/a/b`` gives ``$x`` the type
    ``b`` (the last child step).  Variables whose type cannot be determined
    statically (descendant steps, wildcard steps, joins through ``let``) are
    omitted from the result, which makes every constraint lookup on them
    conservatively fail.
    """
    types: Dict[str, str] = dict(initial or {})
    types.setdefault(DOCUMENT_VARIABLE, DOCUMENT_TYPE)
    _infer_types(expr, types, dtd)
    return types


def _infer_types(expr: XQueryExpr, types: Dict[str, str], dtd: Optional[DTD]) -> None:
    if isinstance(expr, ForExpr):
        inferred = _type_of_path(expr.source, types, dtd)
        if inferred is not None:
            types[expr.var] = inferred
        _infer_types(expr.source, types, dtd)
        if expr.where is not None:
            _infer_types(expr.where, types, dtd)
        _infer_types(expr.body, types, dtd)
        return
    if isinstance(expr, LetExpr):
        inferred = _type_of_path(expr.value, types, dtd)
        if inferred is not None:
            types[expr.var] = inferred
        _infer_types(expr.value, types, dtd)
        _infer_types(expr.body, types, dtd)
        return
    for child in expr.children():
        _infer_types(child, types, dtd)


def _type_of_path(
    expr: XQueryExpr, types: Dict[str, str], dtd: Optional[DTD]
) -> Optional[str]:
    if isinstance(expr, VarRef):
        return types.get(expr.name)
    if not isinstance(expr, PathExpr):
        return None
    current = types.get(expr.var)
    for step in expr.steps:
        if isinstance(step, ChildStep) and step.name != "*":
            current = step.name
        elif isinstance(step, DescendantStep) and step.name != "*":
            current = step.name
        else:
            return None
    return current


def element_type_children(dtd: Optional[DTD], element_type: Optional[str]) -> FrozenSet[str]:
    """Child labels the DTD allows under ``element_type``.

    The pseudo-type :data:`DOCUMENT_TYPE` has exactly the root element as its
    only child.  Unknown types (or a missing DTD) return an empty set, which
    downstream code treats as "no schema knowledge".
    """
    if dtd is None or element_type is None:
        return frozenset()
    if element_type == DOCUMENT_TYPE:
        return frozenset({dtd.root})
    if not dtd.has_element(element_type):
        return frozenset()
    return frozenset(dtd.child_labels(element_type))
