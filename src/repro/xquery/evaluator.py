"""Tree-at-a-time evaluation of the XQuery fragment.

This is the reference semantics of the library.  It is used in three places:

* the **DOM baseline engine** evaluates whole queries against fully
  materialized documents,
* the **projection baseline engine** evaluates queries against projected
  trees,
* the **FluX runtime** evaluates *buffered* sub-expressions (the bodies of
  ``on-first`` handlers) against the buffer contents.

The evaluator is deliberately simple and allocation-happy; its purpose is
correctness and comparability, not speed.  Memory accounting is the job of
the engines, which measure the size of the trees they hand to the evaluator.

Items and sequences
-------------------

Evaluation produces Python lists of *items*: element nodes
(:class:`~repro.xmlstream.tree.XMLElement` or any object implementing the
same navigation protocol), or atomic values (``str``, ``int``, ``float``).
Sequence order follows document order within a single path evaluation, as in
XQuery.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence as Seq, Union

from repro.errors import EvaluationError
from repro.xmlstream.tree import XMLElement, XMLText
from repro.xquery.ast import (
    AndExpr,
    AttributeStep,
    ChildStep,
    Comparison,
    DescendantStep,
    DOCUMENT_VARIABLE,
    ElementConstructor,
    EmptySequence,
    ForExpr,
    FunctionCall,
    IfExpr,
    LetExpr,
    Literal,
    NotExpr,
    OrExpr,
    PathExpr,
    SequenceExpr,
    TextStep,
    VarRef,
    XQueryExpr,
)

#: An item produced by evaluation.
Item = Union[XMLElement, str, int, float]


def copy_element(node: Any) -> XMLElement:
    """Deep-copy a node (or node-like adapter) into a fresh :class:`XMLElement`."""
    if hasattr(node, "to_element"):
        node = node.to_element()
    if isinstance(node, XMLText):
        raise EvaluationError("text nodes are copied via their string value")
    copy = XMLElement(node.tag, dict(node.attrs))
    for child in node.children:
        if isinstance(child, XMLText):
            copy.append_text(child.text)
        else:
            copy.append(copy_element(child))
    return copy


def atomize(item: Item) -> Union[str, int, float]:
    """Turn an item into its typed/atomic value (string value for nodes)."""
    if isinstance(item, (int, float)):
        return item
    if isinstance(item, str):
        return item
    return item.string_value()


def string_value(item: Item) -> str:
    """The string value of an item."""
    value = atomize(item)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def effective_boolean_value(items: Seq[Item]) -> bool:
    """XQuery effective boolean value of a sequence."""
    if not items:
        return False
    first = items[0]
    if len(items) == 1:
        if isinstance(first, bool):
            return first
        if isinstance(first, (int, float)):
            return first != 0
        if isinstance(first, str):
            return len(first) > 0
    return True


def _as_number(value: Union[str, int, float]) -> Optional[float]:
    if isinstance(value, (int, float)):
        return float(value)
    try:
        return float(value.strip())
    except (ValueError, AttributeError):
        return None


def compare_atomic(op: str, left: Union[str, int, float], right: Union[str, int, float]) -> bool:
    """Compare two atomic values with general-comparison coercion rules."""
    left_num = _as_number(left)
    right_num = _as_number(right)
    lhs: Any
    rhs: Any
    if left_num is not None and right_num is not None:
        lhs, rhs = left_num, right_num
    else:
        lhs, rhs = str(left), str(right)
    if op == "=":
        return lhs == rhs
    if op == "!=":
        return lhs != rhs
    if op == "<":
        return lhs < rhs
    if op == "<=":
        return lhs <= rhs
    if op == ">":
        return lhs > rhs
    if op == ">=":
        return lhs >= rhs
    raise EvaluationError(f"unsupported comparison operator {op!r}")


class TreeEvaluator:
    """Evaluates XQuery expressions against materialized (or buffered) trees.

    Parameters
    ----------
    bindings:
        Initial variable environment mapping variable names to items or
        sequences of items.  The document variable (``$ROOT``) is typically
        bound to a synthetic ``#document`` element wrapping the root.
    """

    def __init__(self, bindings: Optional[Dict[str, Union[Item, List[Item]]]] = None):
        self._env: Dict[str, List[Item]] = {}
        for name, value in (bindings or {}).items():
            self.bind(name, value)

    def bind(self, name: str, value: Union[Item, List[Item]]) -> None:
        """Bind ``$name`` to an item or item sequence."""
        self._env[name] = list(value) if isinstance(value, list) else [value]

    # ------------------------------------------------------------ evaluate

    def evaluate(self, expr: XQueryExpr) -> List[Item]:
        """Evaluate ``expr`` and return the result sequence."""
        if isinstance(expr, Literal):
            return [expr.value]
        if isinstance(expr, EmptySequence):
            return []
        if isinstance(expr, VarRef):
            return list(self._lookup(expr.name))
        if isinstance(expr, PathExpr):
            return self._evaluate_path(expr)
        if isinstance(expr, SequenceExpr):
            result: List[Item] = []
            for item in expr.items:
                result.extend(self.evaluate(item))
            return result
        if isinstance(expr, ForExpr):
            return self._evaluate_for(expr)
        if isinstance(expr, LetExpr):
            return self._evaluate_let(expr)
        if isinstance(expr, IfExpr):
            condition = effective_boolean_value(self.evaluate(expr.condition))
            return self.evaluate(expr.then_branch if condition else expr.else_branch)
        if isinstance(expr, ElementConstructor):
            return [self._construct(expr)]
        if isinstance(expr, Comparison):
            return [self._evaluate_comparison(expr)]
        if isinstance(expr, AndExpr):
            return [all(effective_boolean_value(self.evaluate(op)) for op in expr.operands)]
        if isinstance(expr, OrExpr):
            return [any(effective_boolean_value(self.evaluate(op)) for op in expr.operands)]
        if isinstance(expr, NotExpr):
            return [not effective_boolean_value(self.evaluate(expr.operand))]
        if isinstance(expr, FunctionCall):
            return self._evaluate_function(expr)
        raise EvaluationError(f"cannot evaluate expression {expr!r}")

    def evaluate_boolean(self, expr: XQueryExpr) -> bool:
        """Evaluate ``expr`` and reduce it to its effective boolean value."""
        return effective_boolean_value(self.evaluate(expr))

    # ------------------------------------------------------------ bindings

    def _lookup(self, name: str) -> List[Item]:
        if name not in self._env:
            raise EvaluationError(f"unbound variable ${name}")
        return self._env[name]

    def _with_binding(self, name: str, value: List[Item]) -> "_ScopedBinding":
        return _ScopedBinding(self._env, name, value)

    # ----------------------------------------------------------------- for

    def _evaluate_for(self, expr: ForExpr) -> List[Item]:
        source_items = self.evaluate(expr.source)
        result: List[Item] = []
        for item in source_items:
            with self._with_binding(expr.var, [item]):
                if expr.where is not None and not self.evaluate_boolean(expr.where):
                    continue
                result.extend(self.evaluate(expr.body))
        return result

    def _evaluate_let(self, expr: LetExpr) -> List[Item]:
        value = self.evaluate(expr.value)
        with self._with_binding(expr.var, value):
            return self.evaluate(expr.body)

    # ---------------------------------------------------------------- path

    def _evaluate_path(self, expr: PathExpr) -> List[Item]:
        items: List[Item] = list(self._lookup(expr.var))
        for step in expr.steps:
            items = self._apply_step(items, step)
        return items

    def _apply_step(self, items: List[Item], step) -> List[Item]:
        result: List[Item] = []
        if isinstance(step, ChildStep):
            for item in items:
                if hasattr(item, "child_elements"):
                    result.extend(item.child_elements(step.name))
            return result
        if isinstance(step, DescendantStep):
            for item in items:
                if hasattr(item, "descendants"):
                    result.extend(item.descendants(step.name))
            return result
        if isinstance(step, AttributeStep):
            for item in items:
                if hasattr(item, "get"):
                    value = item.get(step.name)
                    if value is not None:
                        result.append(value)
            return result
        if isinstance(step, TextStep):
            for item in items:
                if hasattr(item, "children"):
                    for child in item.children:
                        if isinstance(child, XMLText):
                            result.append(child.text)
                elif hasattr(item, "string_value"):
                    result.append(item.string_value())
            return result
        raise EvaluationError(f"unsupported path step {step!r}")

    # ---------------------------------------------------------- construct

    def _construct(self, expr: ElementConstructor) -> XMLElement:
        element = XMLElement(expr.name, dict(expr.attributes))
        items = self.evaluate(expr.content)
        previous_atomic = False
        for item in items:
            if isinstance(item, (str, int, float)) and not isinstance(item, bool):
                text = string_value(item)
                if previous_atomic:
                    element.append_text(" ")
                element.append_text(text)
                previous_atomic = True
            elif isinstance(item, bool):
                element.append_text("true" if item else "false")
                previous_atomic = True
            else:
                element.append(copy_element(item))
                previous_atomic = False
        return element

    # --------------------------------------------------------- comparison

    def _evaluate_comparison(self, expr: Comparison) -> bool:
        left_items = self.evaluate(expr.left)
        right_items = self.evaluate(expr.right)
        for left in left_items:
            for right in right_items:
                if compare_atomic(expr.op, atomize(left), atomize(right)):
                    return True
        return False

    # ----------------------------------------------------------- functions

    def _evaluate_function(self, expr: FunctionCall) -> List[Item]:
        name = expr.name
        if name == "true":
            return [True]
        if name == "false":
            return [False]
        arguments = [self.evaluate(argument) for argument in expr.arguments]
        if name == "exists":
            return [bool(arguments[0])]
        if name == "empty":
            return [not arguments[0]]
        if name in ("string", "data"):
            if not arguments or not arguments[0]:
                return [""] if name == "string" else []
            return [string_value(item) for item in arguments[0]]
        raise EvaluationError(f"unsupported function {name}()")


class _ScopedBinding:
    """Context manager that installs a binding and restores the old value."""

    def __init__(self, env: Dict[str, List[Item]], name: str, value: List[Item]):
        self._env = env
        self._name = name
        self._value = value
        self._had_previous = False
        self._previous: List[Item] = []

    def __enter__(self) -> None:
        if self._name in self._env:
            self._had_previous = True
            self._previous = self._env[self._name]
        self._env[self._name] = self._value

    def __exit__(self, *exc_info) -> None:
        if self._had_previous:
            self._env[self._name] = self._previous
        else:
            del self._env[self._name]


def make_document_node(root: XMLElement) -> XMLElement:
    """Wrap ``root`` in a synthetic ``#document`` element.

    Binding ``$ROOT`` to this wrapper makes absolute paths (``$ROOT/bib/...``)
    resolve with ordinary child steps.
    """
    document = XMLElement("#document")
    document.append(root)
    return document


def evaluate_query_on_tree(expr: XQueryExpr, root: XMLElement) -> List[Item]:
    """Evaluate a whole query against a document tree.

    ``$ROOT`` is bound to the document node wrapping ``root``.
    """
    evaluator = TreeEvaluator({DOCUMENT_VARIABLE: make_document_node(root)})
    return evaluator.evaluate(expr)
