"""Recursive-descent parser for the supported XQuery fragment.

The parser is scannerless: it works directly on the query string because
direct element constructors switch between expression syntax and XML content
syntax, which is awkward to express with a context-free token stream.

Supported syntax
----------------

* FLWR expressions: ``for $x in <expr> [where <expr>] return <expr>``,
  ``let $x := <expr> return <expr>`` (multiple ``for``/``let`` clauses are
  parsed as nested expressions);
* conditionals ``if (<expr>) then <expr> else <expr>``;
* direct element constructors with literal attributes, literal text content,
  nested constructors and enclosed expressions ``{ ... }``;
* relative paths ``$x/a/b``, ``$x//a``, ``$x/@attr``, ``$x/text()``, ``$x/*``
  and absolute paths ``/a/b`` (rooted at the implicit ``$ROOT`` variable);
* general comparisons ``= != < <= > >=`` and their keyword forms
  ``eq ne lt le gt ge``;
* boolean connectives ``and`` / ``or`` and the functions ``not``, ``exists``,
  ``empty``, ``string``, ``data``, ``true``, ``false``;
* parenthesized sequences ``(e1, e2, ...)`` and the empty sequence ``()``.

Anything else (notably aggregation functions — outside the paper's fragment)
raises :class:`~repro.errors.UnsupportedFeatureError`.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import UnsupportedFeatureError, XQuerySyntaxError
from repro.xquery.ast import (
    AndExpr,
    AttributeStep,
    ChildStep,
    Comparison,
    DescendantStep,
    DOCUMENT_VARIABLE,
    ElementConstructor,
    EmptySequence,
    ForExpr,
    FunctionCall,
    IfExpr,
    LetExpr,
    Literal,
    NotExpr,
    OrExpr,
    PathExpr,
    SequenceExpr,
    Step,
    TextStep,
    VarRef,
    XQueryExpr,
    sequence_of,
)

_NAME_RE = re.compile(r"[A-Za-z_][\w\-.]*")
_NUMBER_RE = re.compile(r"\d+(\.\d+)?")
_KEYWORDS = {
    "for",
    "let",
    "in",
    "where",
    "return",
    "if",
    "then",
    "else",
    "and",
    "or",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
}
_KEYWORD_COMPARISONS = {"eq": "=", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}
_AGGREGATES = {"count", "sum", "avg", "min", "max", "distinct-values"}


class _Parser:
    """Stateful cursor over the query text."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0

    # ------------------------------------------------------------ plumbing

    def error(self, message: str) -> XQuerySyntaxError:
        return XQuerySyntaxError(message, self._pos)

    def _skip_ws(self) -> None:
        text, pos = self._text, self._pos
        while pos < len(text):
            if text[pos].isspace():
                pos += 1
            elif text.startswith("(:", pos):
                end = text.find(":)", pos + 2)
                if end < 0:
                    self._pos = pos
                    raise self.error("unterminated XQuery comment (: ... :)")
                pos = end + 2
            else:
                break
        self._pos = pos

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._text[index] if index < len(self._text) else ""

    def _startswith(self, token: str) -> bool:
        return self._text.startswith(token, self._pos)

    def _consume(self, token: str) -> None:
        if not self._startswith(token):
            raise self.error(f"expected {token!r}")
        self._pos += len(token)

    def _try_consume(self, token: str) -> bool:
        if self._startswith(token):
            self._pos += len(token)
            return True
        return False

    def _at_keyword(self, keyword: str) -> bool:
        self._skip_ws()
        if not self._startswith(keyword):
            return False
        end = self._pos + len(keyword)
        if end < len(self._text) and (self._text[end].isalnum() or self._text[end] in "_-"):
            return False
        return True

    def _consume_keyword(self, keyword: str) -> None:
        if not self._at_keyword(keyword):
            raise self.error(f"expected keyword {keyword!r}")
        self._pos += len(keyword)

    def _try_keyword(self, keyword: str) -> bool:
        if self._at_keyword(keyword):
            self._pos += len(keyword)
            return True
        return False

    def _parse_name(self) -> str:
        self._skip_ws()
        match = _NAME_RE.match(self._text, self._pos)
        if not match:
            raise self.error("expected a name")
        self._pos = match.end()
        return match.group(0)

    def at_end(self) -> bool:
        self._skip_ws()
        return self._pos >= len(self._text)

    # ----------------------------------------------------------- top level

    def parse_query(self) -> XQueryExpr:
        expr = self.parse_expr()
        if not self.at_end():
            raise self.error("unexpected trailing text after the query")
        return expr

    def parse_expr(self) -> XQueryExpr:
        """Expr := ExprSingle ("," ExprSingle)*"""
        items = [self.parse_expr_single()]
        self._skip_ws()
        while self._try_consume(","):
            items.append(self.parse_expr_single())
            self._skip_ws()
        return sequence_of(items) if len(items) > 1 else items[0]

    def parse_expr_single(self) -> XQueryExpr:
        self._skip_ws()
        if self._at_keyword("for"):
            return self._parse_flwr()
        if self._at_keyword("let"):
            return self._parse_let()
        if self._at_keyword("if"):
            return self._parse_if()
        return self._parse_or()

    # --------------------------------------------------------------- FLWR

    def _parse_flwr(self) -> XQueryExpr:
        self._consume_keyword("for")
        bindings: List[Tuple[str, XQueryExpr]] = []
        while True:
            self._skip_ws()
            self._consume("$")
            var = self._parse_name()
            self._consume_keyword("in")
            source = self.parse_expr_single()
            bindings.append((var, source))
            self._skip_ws()
            if self._try_consume(","):
                continue
            # XQuery also allows chaining additional `for` clauses directly.
            if self._try_keyword("for"):
                continue
            break
        where: Optional[XQueryExpr] = None
        if self._try_keyword("where"):
            where = self.parse_expr_single()
        self._consume_keyword("return")
        body = self.parse_expr_single()
        # Multiple bindings nest left-to-right; the where clause attaches to
        # the innermost loop (it may reference every bound variable).
        expr: XQueryExpr = body
        for index in range(len(bindings) - 1, -1, -1):
            var, source = bindings[index]
            loop_where = where if index == len(bindings) - 1 else None
            expr = ForExpr(var=var, source=source, body=expr, where=loop_where)
        return expr

    def _parse_let(self) -> XQueryExpr:
        self._consume_keyword("let")
        bindings: List[Tuple[str, XQueryExpr]] = []
        while True:
            self._skip_ws()
            self._consume("$")
            var = self._parse_name()
            self._skip_ws()
            self._consume(":=")
            value = self.parse_expr_single()
            bindings.append((var, value))
            self._skip_ws()
            if not self._try_consume(","):
                break
        self._consume_keyword("return")
        body = self.parse_expr_single()
        expr: XQueryExpr = body
        for var, value in reversed(bindings):
            expr = LetExpr(var=var, value=value, body=expr)
        return expr

    def _parse_if(self) -> XQueryExpr:
        self._consume_keyword("if")
        self._skip_ws()
        self._consume("(")
        condition = self.parse_expr()
        self._skip_ws()
        self._consume(")")
        self._consume_keyword("then")
        then_branch = self.parse_expr_single()
        self._consume_keyword("else")
        else_branch = self.parse_expr_single()
        return IfExpr(condition, then_branch, else_branch)

    # ---------------------------------------------------------- operators

    def _parse_or(self) -> XQueryExpr:
        operands = [self._parse_and()]
        while self._try_keyword("or"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return OrExpr(tuple(operands))

    def _parse_and(self) -> XQueryExpr:
        operands = [self._parse_comparison()]
        while self._try_keyword("and"):
            operands.append(self._parse_comparison())
        if len(operands) == 1:
            return operands[0]
        return AndExpr(tuple(operands))

    def _parse_comparison(self) -> XQueryExpr:
        left = self._parse_primary()
        self._skip_ws()
        op = self._match_comparison_operator()
        if op is None:
            return left
        right = self._parse_primary()
        return Comparison(op, left, right)

    def _match_comparison_operator(self) -> Optional[str]:
        self._skip_ws()
        for keyword, symbol in _KEYWORD_COMPARISONS.items():
            if self._at_keyword(keyword):
                self._pos += len(keyword)
                return symbol
        for symbol in ("!=", "<=", ">=", "=", "<", ">"):
            if self._startswith(symbol):
                self._pos += len(symbol)
                return symbol
        return None

    # ------------------------------------------------------------ primary

    def _parse_primary(self) -> XQueryExpr:
        self._skip_ws()
        ch = self._peek()
        if ch == "":
            raise self.error("unexpected end of query")
        if ch == "$":
            return self._parse_path(self._parse_variable_root())
        if ch == "(":
            return self._parse_parenthesized()
        if ch == "{":
            # Tolerated extension: a braced expression outside a constructor
            # (the paper writes e.g. ``return { $a }``) is treated like a
            # parenthesized expression.
            self._consume("{")
            expr = self.parse_expr()
            self._skip_ws()
            self._consume("}")
            return expr
        if ch in "\"'":
            return Literal(self._parse_string_literal())
        if ch.isdigit():
            return self._parse_number()
        if ch == "<":
            return self._parse_constructor()
        if ch == "/":
            return self._parse_path(VarRef(DOCUMENT_VARIABLE), absolute=True)
        match = _NAME_RE.match(self._text, self._pos)
        if match:
            return self._parse_named(match.group(0))
        raise self.error(f"unexpected character {ch!r}")

    def _parse_variable_root(self) -> VarRef:
        self._consume("$")
        return VarRef(self._parse_name())

    def _parse_parenthesized(self) -> XQueryExpr:
        self._consume("(")
        self._skip_ws()
        if self._try_consume(")"):
            return EmptySequence()
        expr = self.parse_expr()
        self._skip_ws()
        self._consume(")")
        return expr

    def _parse_string_literal(self) -> str:
        quote = self._peek()
        self._pos += 1
        start = self._pos
        parts: List[str] = []
        while True:
            end = self._text.find(quote, self._pos)
            if end < 0:
                raise self.error("unterminated string literal")
            parts.append(self._text[self._pos : end])
            # A doubled quote is an escaped quote character.
            if self._text.startswith(quote * 2, end):
                parts.append(quote)
                self._pos = end + 2
                continue
            self._pos = end + 1
            break
        return "".join(parts)

    def _parse_number(self) -> Literal:
        match = _NUMBER_RE.match(self._text, self._pos)
        if not match:
            raise self.error("malformed number literal")
        self._pos = match.end()
        text = match.group(0)
        return Literal(float(text) if "." in text else int(text))

    def _parse_named(self, name: str) -> XQueryExpr:
        if name in _KEYWORDS:
            raise self.error(f"unexpected keyword {name!r}")
        after = self._pos + len(name)
        rest = self._text[after:].lstrip()
        if rest.startswith("("):
            self._pos = after
            return self._parse_function_call(name)
        raise self.error(
            f"bare name {name!r} is not a valid expression "
            f"(paths must be rooted at a variable or start with '/')"
        )

    def _parse_function_call(self, name: str) -> XQueryExpr:
        if name in _AGGREGATES:
            raise UnsupportedFeatureError(
                f"aggregation function {name}() is outside the supported XQuery "
                f"fragment (the paper's engine does not cover aggregation)"
            )
        self._skip_ws()
        self._consume("(")
        arguments: List[XQueryExpr] = []
        self._skip_ws()
        if not self._try_consume(")"):
            arguments.append(self.parse_expr_single())
            self._skip_ws()
            while self._try_consume(","):
                arguments.append(self.parse_expr_single())
                self._skip_ws()
            self._consume(")")
        if name == "not":
            if len(arguments) != 1:
                raise self.error("not() takes exactly one argument")
            return NotExpr(arguments[0])
        if name == "doc" or name == "document":
            # doc("...") denotes the (single) input document; path steps may
            # follow the call directly.
            return self._parse_path(VarRef(DOCUMENT_VARIABLE))
        if name not in FunctionCall.SUPPORTED:
            raise UnsupportedFeatureError(
                f"function {name}() is outside the supported XQuery fragment"
            )
        return FunctionCall(name, tuple(arguments))

    # --------------------------------------------------------------- paths

    def _parse_path(self, root: XQueryExpr, absolute: bool = False) -> XQueryExpr:
        steps: List[Step] = []
        while True:
            if absolute and not steps:
                # We are positioned at the leading '/'.
                pass
            self._skip_ws()
            if self._startswith("//"):
                self._pos += 2
                steps.append(DescendantStep(self._parse_step_name()))
                continue
            if self._peek() == "/":
                self._pos += 1
                step = self._parse_step()
                steps.append(step)
                continue
            break
        if isinstance(root, VarRef):
            if not steps:
                return root
            return PathExpr(root.name, tuple(steps))
        raise self.error("paths may only be rooted at variables or '/'")

    def _parse_step(self) -> Step:
        self._skip_ws()
        if self._peek() == "@":
            self._pos += 1
            return AttributeStep(self._parse_name())
        if self._startswith("text()"):
            self._pos += len("text()")
            return TextStep()
        if self._peek() == "*":
            self._pos += 1
            return ChildStep("*")
        return ChildStep(self._parse_step_name())

    def _parse_step_name(self) -> str:
        self._skip_ws()
        if self._peek() == "*":
            self._pos += 1
            return "*"
        if self._startswith("text()"):
            self._pos += len("text()")
            return "text()"
        return self._parse_name()

    # --------------------------------------------------------- constructor

    def _parse_constructor(self) -> XQueryExpr:
        self._consume("<")
        name = self._parse_name()
        attributes: List[Tuple[str, str]] = []
        while True:
            self._skip_ws()
            if self._try_consume("/>"):
                return ElementConstructor(name, tuple(attributes), EmptySequence())
            if self._try_consume(">"):
                break
            attr_name = self._parse_name()
            self._skip_ws()
            self._consume("=")
            self._skip_ws()
            quote = self._peek()
            if quote not in "\"'":
                raise self.error(f"attribute {attr_name!r} value must be a quoted literal")
            self._pos += 1
            end = self._text.find(quote, self._pos)
            if end < 0:
                raise self.error(f"unterminated value for attribute {attr_name!r}")
            value = self._text[self._pos : end]
            if "{" in value:
                raise UnsupportedFeatureError(
                    "computed attribute values are outside the supported fragment"
                )
            attributes.append((attr_name, value))
            self._pos = end + 1
        content = self._parse_constructor_content(name)
        return ElementConstructor(name, tuple(attributes), content)

    def _parse_constructor_content(self, name: str) -> XQueryExpr:
        items: List[XQueryExpr] = []
        text_parts: List[str] = []

        def flush_text() -> None:
            if text_parts:
                text = "".join(text_parts)
                text_parts.clear()
                if text.strip():
                    items.append(Literal(text))

        while True:
            if self._pos >= len(self._text):
                raise self.error(f"unterminated element constructor <{name}>")
            ch = self._peek()
            if ch == "<":
                if self._startswith("</"):
                    flush_text()
                    self._consume("</")
                    closing = self._parse_name()
                    if closing != name:
                        raise self.error(
                            f"closing tag </{closing}> does not match <{name}>"
                        )
                    self._skip_ws()
                    self._consume(">")
                    return sequence_of(items)
                flush_text()
                items.append(self._parse_constructor())
            elif ch == "{":
                flush_text()
                self._pos += 1
                items.append(self.parse_expr())
                self._skip_ws()
                self._consume("}")
            else:
                text_parts.append(ch)
                self._pos += 1


def parse_xquery(text: str) -> XQueryExpr:
    """Parse an XQuery string into its AST.

    Raises :class:`~repro.errors.XQuerySyntaxError` on malformed input and
    :class:`~repro.errors.UnsupportedFeatureError` for constructs outside the
    supported fragment.
    """
    return _Parser(text).parse_query()
