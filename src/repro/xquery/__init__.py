"""XQuery substrate: AST, parser, static analysis, and tree evaluation.

This package implements the XQuery fragment FluXQuery supports (Section 4 of
the paper): arbitrarily nested for-loops and joins, where-clauses, element
constructors, child/attribute/text paths, let-bindings and conditionals —
but no aggregation.

The parser produces the AST of :mod:`repro.xquery.ast`; the optimizer in
:mod:`repro.core` rewrites that AST; and :mod:`repro.xquery.evaluator`
provides the reference tree-at-a-time evaluation used by the baseline engines
and by buffered sub-expressions inside the FluX runtime.
"""

from repro.xquery.ast import (
    AndExpr,
    AttributeStep,
    ChildStep,
    Comparison,
    DescendantStep,
    ElementConstructor,
    EmptySequence,
    ForExpr,
    FunctionCall,
    IfExpr,
    LetExpr,
    Literal,
    NotExpr,
    OrExpr,
    PathExpr,
    SequenceExpr,
    Step,
    TextStep,
    VarRef,
    XQueryExpr,
)
from repro.xquery.parser import parse_xquery
from repro.xquery.analysis import (
    child_label_dependencies,
    free_variables,
    fresh_variable,
    substitute_variable,
    variable_element_types,
)
from repro.xquery.evaluator import TreeEvaluator, evaluate_query_on_tree

__all__ = [
    "XQueryExpr",
    "SequenceExpr",
    "EmptySequence",
    "Literal",
    "VarRef",
    "PathExpr",
    "Step",
    "ChildStep",
    "DescendantStep",
    "AttributeStep",
    "TextStep",
    "ForExpr",
    "LetExpr",
    "IfExpr",
    "ElementConstructor",
    "Comparison",
    "AndExpr",
    "OrExpr",
    "NotExpr",
    "FunctionCall",
    "parse_xquery",
    "free_variables",
    "child_label_dependencies",
    "substitute_variable",
    "fresh_variable",
    "variable_element_types",
    "TreeEvaluator",
    "evaluate_query_on_tree",
]
