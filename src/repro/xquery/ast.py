"""Abstract syntax tree for the supported XQuery fragment.

The node vocabulary covers the fragment described in the paper: FLWR
expressions (``for``/``let``/``where``/``return``), element constructors,
relative paths rooted at variables, conditionals, comparisons (including
joins), boolean connectives and a handful of built-in functions.  Aggregation
is outside the fragment (as stated in the paper's conclusions) and is
rejected by the parser.

Nodes are immutable dataclasses.  Rewrites (normal form, algebraic
optimization) construct new trees rather than mutating; helper constructors
(:func:`sequence_of`) keep the shapes canonical (no nested or single-item
sequences).

Every node can render itself back to XQuery syntax via ``to_xquery()``, which
is used for error messages, documentation, examples, and round-trip tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence as Seq, Tuple, Union

# --------------------------------------------------------------------- paths


@dataclass(frozen=True)
class Step:
    """Base class for path steps."""

    def to_xquery(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ChildStep(Step):
    """Child axis step ``/name`` (``*`` matches any element)."""

    name: str

    def to_xquery(self) -> str:
        return self.name


@dataclass(frozen=True)
class DescendantStep(Step):
    """Descendant-or-self shorthand ``//name``."""

    name: str

    def to_xquery(self) -> str:
        return f"/{self.name}"  # rendered after the joining "/" => "//name"


@dataclass(frozen=True)
class AttributeStep(Step):
    """Attribute step ``/@name``."""

    name: str

    def to_xquery(self) -> str:
        return f"@{self.name}"


@dataclass(frozen=True)
class TextStep(Step):
    """Text-node step ``/text()``."""

    def to_xquery(self) -> str:
        return "text()"


# ---------------------------------------------------------------- base class


class XQueryExpr:
    """Base class for all XQuery expression nodes."""

    __slots__ = ()

    def to_xquery(self) -> str:
        """Render this expression in XQuery syntax."""
        raise NotImplementedError

    def children(self) -> Tuple["XQueryExpr", ...]:
        """Direct sub-expressions (used by generic traversals)."""
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.to_xquery()!r})"


# ------------------------------------------------------------------- leaves


@dataclass(frozen=True, repr=False)
class Literal(XQueryExpr):
    """A string or numeric literal."""

    value: Union[str, int, float]

    def to_xquery(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace('"', '""')
            return f'"{escaped}"'
        return str(self.value)


@dataclass(frozen=True, repr=False)
class VarRef(XQueryExpr):
    """A variable reference ``$name``."""

    name: str

    def to_xquery(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True, repr=False)
class EmptySequence(XQueryExpr):
    """The empty sequence ``()``."""

    def to_xquery(self) -> str:
        return "()"


@dataclass(frozen=True, repr=False)
class PathExpr(XQueryExpr):
    """A relative path rooted at a variable: ``$var/step/.../step``.

    Absolute paths (``/bib/book``) are parsed as paths rooted at the
    implicit document variable ``$ROOT``.
    """

    var: str
    steps: Tuple[Step, ...]

    def to_xquery(self) -> str:
        rendered = [f"${self.var}"]
        for step in self.steps:
            rendered.append("/" + step.to_xquery())
        return "".join(rendered)

    def first_child_label(self) -> Optional[str]:
        """Name of the first child step, or ``None`` for attribute/text/
        descendant first steps."""
        if self.steps and isinstance(self.steps[0], ChildStep):
            return self.steps[0].name
        return None

    def drop_first_step(self) -> "PathExpr":
        """The same path re-rooted past its first step (variable unchanged)."""
        return PathExpr(self.var, self.steps[1:])


# -------------------------------------------------------------- composites


@dataclass(frozen=True, repr=False)
class SequenceExpr(XQueryExpr):
    """A sequence of expressions evaluated and concatenated in order."""

    items: Tuple[XQueryExpr, ...]

    def to_xquery(self) -> str:
        return "(" + ", ".join(item.to_xquery() for item in self.items) + ")"

    def children(self) -> Tuple[XQueryExpr, ...]:
        return self.items


@dataclass(frozen=True, repr=False)
class ForExpr(XQueryExpr):
    """``for $var in source [where condition] return body``.

    The optimizer's normal form removes ``where`` clauses (they become
    conditionals in the body), so downstream passes may assume
    ``where is None``.
    """

    var: str
    source: XQueryExpr
    body: XQueryExpr
    where: Optional[XQueryExpr] = None

    def to_xquery(self) -> str:
        where = f" where {self.where.to_xquery()}" if self.where is not None else ""
        return (
            f"for ${self.var} in {self.source.to_xquery()}{where} "
            f"return {self.body.to_xquery()}"
        )

    def children(self) -> Tuple[XQueryExpr, ...]:
        parts: List[XQueryExpr] = [self.source]
        if self.where is not None:
            parts.append(self.where)
        parts.append(self.body)
        return tuple(parts)


@dataclass(frozen=True, repr=False)
class LetExpr(XQueryExpr):
    """``let $var := value return body`` (eliminated by normalization)."""

    var: str
    value: XQueryExpr
    body: XQueryExpr

    def to_xquery(self) -> str:
        return (
            f"let ${self.var} := {self.value.to_xquery()} "
            f"return {self.body.to_xquery()}"
        )

    def children(self) -> Tuple[XQueryExpr, ...]:
        return (self.value, self.body)


@dataclass(frozen=True, repr=False)
class IfExpr(XQueryExpr):
    """``if (condition) then then_branch else else_branch``."""

    condition: XQueryExpr
    then_branch: XQueryExpr
    else_branch: XQueryExpr

    def to_xquery(self) -> str:
        return (
            f"if ({self.condition.to_xquery()}) "
            f"then {self.then_branch.to_xquery()} "
            f"else {self.else_branch.to_xquery()}"
        )

    def children(self) -> Tuple[XQueryExpr, ...]:
        return (self.condition, self.then_branch, self.else_branch)


@dataclass(frozen=True, repr=False)
class ElementConstructor(XQueryExpr):
    """A direct element constructor ``<name attr="...">{content}</name>``.

    Attribute values are literal strings (computed attribute values are
    outside the supported fragment).  ``content`` is a single expression —
    typically a :class:`SequenceExpr` mixing literal text and enclosed
    expressions.
    """

    name: str
    attributes: Tuple[Tuple[str, str], ...]
    content: XQueryExpr

    def to_xquery(self) -> str:
        attrs = "".join(f' {name}="{value}"' for name, value in self.attributes)
        if isinstance(self.content, EmptySequence):
            return f"<{self.name}{attrs}/>"
        return f"<{self.name}{attrs}>{{ {self.content.to_xquery()} }}</{self.name}>"

    def children(self) -> Tuple[XQueryExpr, ...]:
        return (self.content,)


@dataclass(frozen=True, repr=False)
class Comparison(XQueryExpr):
    """A general comparison ``left op right`` (``=``, ``!=``, ``<``, ...).

    Follows XQuery general-comparison semantics: existentially quantified
    over both operand sequences, numeric comparison when both values are
    numeric, string comparison otherwise.
    """

    op: str
    left: XQueryExpr
    right: XQueryExpr

    VALID_OPS = ("=", "!=", "<", "<=", ">", ">=")

    def to_xquery(self) -> str:
        return f"{self.left.to_xquery()} {self.op} {self.right.to_xquery()}"

    def children(self) -> Tuple[XQueryExpr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, repr=False)
class AndExpr(XQueryExpr):
    """Conjunction ``a and b and ...``."""

    operands: Tuple[XQueryExpr, ...]

    def to_xquery(self) -> str:
        return " and ".join(
            f"({operand.to_xquery()})" for operand in self.operands
        )

    def children(self) -> Tuple[XQueryExpr, ...]:
        return self.operands


@dataclass(frozen=True, repr=False)
class OrExpr(XQueryExpr):
    """Disjunction ``a or b or ...``."""

    operands: Tuple[XQueryExpr, ...]

    def to_xquery(self) -> str:
        return " or ".join(f"({operand.to_xquery()})" for operand in self.operands)

    def children(self) -> Tuple[XQueryExpr, ...]:
        return self.operands


@dataclass(frozen=True, repr=False)
class NotExpr(XQueryExpr):
    """Negation ``not(expr)`` (effective boolean value)."""

    operand: XQueryExpr

    def to_xquery(self) -> str:
        return f"not({self.operand.to_xquery()})"

    def children(self) -> Tuple[XQueryExpr, ...]:
        return (self.operand,)


@dataclass(frozen=True, repr=False)
class FunctionCall(XQueryExpr):
    """A call to one of the supported built-in functions.

    Supported: ``exists``, ``empty``, ``string``, ``data``, ``true``,
    ``false``, ``not`` (``not`` is parsed into :class:`NotExpr`).
    """

    name: str
    arguments: Tuple[XQueryExpr, ...]

    SUPPORTED = ("exists", "empty", "string", "data", "true", "false")

    def to_xquery(self) -> str:
        args = ", ".join(argument.to_xquery() for argument in self.arguments)
        return f"{self.name}({args})"

    def children(self) -> Tuple[XQueryExpr, ...]:
        return self.arguments


# ------------------------------------------------------------------ helpers


def sequence_of(items: Iterable[XQueryExpr]) -> XQueryExpr:
    """Build a canonical sequence: flattened, no empty items, unwrapped when
    the result has zero or one member."""
    flat: List[XQueryExpr] = []
    for item in items:
        if isinstance(item, SequenceExpr):
            flat.extend(item.items)
        elif isinstance(item, EmptySequence):
            continue
        else:
            flat.append(item)
    if not flat:
        return EmptySequence()
    if len(flat) == 1:
        return flat[0]
    return SequenceExpr(tuple(flat))


def sequence_items(expr: XQueryExpr) -> Tuple[XQueryExpr, ...]:
    """View any expression as a tuple of sequence items."""
    if isinstance(expr, SequenceExpr):
        return expr.items
    if isinstance(expr, EmptySequence):
        return ()
    return (expr,)


def walk(expr: XQueryExpr) -> Iterable[XQueryExpr]:
    """Yield ``expr`` and every descendant expression (pre-order)."""
    yield expr
    for child in expr.children():
        yield from walk(child)


#: Name of the implicit variable bound to the document node.
DOCUMENT_VARIABLE = "ROOT"
